//! A lazy, typed dataflow layer over the job executor.
//!
//! The paper's algorithms are *chains* of MapReduce jobs — the two-job
//! similarity join of Section 4, the per-round jobs of GreedyMR and StackMR
//! in Sections 5–6 — but [`crate::Job`] runs a single job.  This module
//! adds the plan-builder API that callers chain jobs with:
//!
//! * [`FlowContext`] — shared execution state: the [`JobConfig`] every job
//!   of the chain runs under, the [`KvStore`] HDFS stand-in for persisted
//!   datasets, and the accumulated [`JobMetrics`] of every job the flow has
//!   executed ([`FlowContext::report`] snapshots them as a [`FlowReport`]).
//! * [`Dataset<K, V>`] — a *deferred* computation producing `(K, V)`
//!   records.  Nothing runs until a terminal ([`Dataset::collect`] or
//!   [`Dataset::persist`]) is invoked; combinators only extend the plan.
//! * [`JobStage`] — a job under construction: [`Dataset::map_with`] fixes
//!   the mapper, [`JobStage::combined_with`] / [`JobStage::partitioned_by`]
//!   optionally fix the combiner and partitioner, and
//!   [`JobStage::reduce_with`] completes the job, yielding the next
//!   `Dataset` in the chain.
//! * [`Dataset::then`] — the multi-job chain combinator for stages whose
//!   *construction* depends on the previous job's output (e.g. the
//!   similarity join builds an inverted index from job 1's output and ships
//!   it to job 2's mapper).
//!
//! Records move between stages by value: a completed job's output `Vec` is
//! handed to the next job as its input without cloning or re-sorting.
//!
//! # Example
//!
//! ```
//! use smr_mapreduce::flow::FlowContext;
//! use smr_mapreduce::prelude::*;
//!
//! struct Tokenize;
//! impl Mapper for Tokenize {
//!     type InKey = usize;
//!     type InValue = String;
//!     type OutKey = String;
//!     type OutValue = u64;
//!     fn map(&self, _k: &usize, text: &String, out: &mut Emitter<String, u64>) {
//!         for w in text.split_whitespace() {
//!             out.emit(w.to_string(), 1);
//!         }
//!     }
//! }
//!
//! struct Sum;
//! impl Reducer for Sum {
//!     type Key = String;
//!     type InValue = u64;
//!     type OutKey = String;
//!     type OutValue = u64;
//!     fn reduce(&self, k: &String, vs: &[u64], out: &mut Emitter<String, u64>) {
//!         out.emit(k.clone(), vs.iter().sum());
//!     }
//! }
//!
//! let flow = FlowContext::named("wc");
//! let mut counts = flow
//!     .dataset(vec![(0usize, "a b a".to_string()), (1, "b c".to_string())])
//!     .map_with(Tokenize)
//!     .reduce_with(Sum)
//!     .collect();
//! counts.sort();
//! assert_eq!(counts[0], ("a".to_string(), 2));
//! assert_eq!(flow.report().num_jobs(), 1);
//! ```

use std::any::Any;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use smr_storage::{DatasetStore, StorageError};

use crate::config::JobConfig;
use crate::counters::Counters;
use crate::executor::Job;
use crate::metrics::JobMetrics;
use crate::partition::{HashPartitioner, Partitioner};
use crate::store::KvStore;
use crate::types::{Combiner, IdentityCombiner, Key, Mapper, Reducer, Value};

/// The records a dataset materializes to.
pub type Records<K, V> = Vec<(K, V)>;

/// The deferred computation behind a [`Dataset`].
type SourceThunk<K, V> = Box<dyn FnOnce(&FlowContext) -> Records<K, V>>;

/// A type-erased persisted dataset inside the in-memory flow store,
/// alongside the `type_name` of its `Records<K, V>` (for typed mismatch
/// errors).
type StoredDataset = (Arc<dyn Any + Send + Sync>, &'static str);

/// A typed error raised by the flow's persistence layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlowError {
    /// Nothing was persisted at the path.
    MissingDataset {
        /// The requested path.
        path: String,
    },
    /// The dataset at the path was persisted with a different record type.
    TypeMismatch {
        /// The requested path.
        path: String,
        /// Record type the dataset was persisted with.
        stored: String,
        /// Record type the caller requested.
        requested: String,
    },
    /// The storage backend failed (I/O error, corrupt file, …).
    Storage {
        /// The requested path.
        path: String,
        /// The backend's error message.
        message: String,
    },
}

impl std::fmt::Display for FlowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlowError::MissingDataset { path } => write!(f, "no dataset persisted at `{path}`"),
            FlowError::TypeMismatch {
                path,
                stored,
                requested,
            } => write!(
                f,
                "dataset at `{path}` holds `{stored}`, requested `{requested}`"
            ),
            FlowError::Storage { path, message } => {
                write!(f, "storage error at `{path}`: {message}")
            }
        }
    }
}

impl std::error::Error for FlowError {}

/// Where a flow persists its datasets: the in-memory [`KvStore`] (the
/// default), or a file-backed [`DatasetStore`] so chained jobs stream
/// between stages without holding every persisted dataset in RAM.
#[derive(Debug)]
enum FlowStore {
    Memory(KvStore<StoredDataset>),
    Disk(DatasetStore),
}

/// Summary of every job a flow has executed so far, in execution order.
#[derive(Debug, Clone, Default)]
pub struct FlowReport {
    /// Metrics of every job, in execution order.
    pub jobs: Vec<JobMetrics>,
    /// Accumulated totals over all jobs.
    pub totals: JobMetrics,
    /// Persistence errors the flow swallowed to keep a pipeline running
    /// (e.g. [`FlowContext::load`] on a type-mismatched path).  A healthy
    /// run has none; anything here is a pipeline bug surfacing.
    pub errors: Vec<FlowError>,
}

impl FlowReport {
    fn new(jobs: Vec<JobMetrics>, errors: Vec<FlowError>) -> Self {
        let mut totals = JobMetrics {
            job_name: "totals".to_string(),
            ..JobMetrics::default()
        };
        for job in &jobs {
            totals.accumulate(job);
        }
        FlowReport {
            jobs,
            totals,
            errors,
        }
    }

    /// Number of MapReduce jobs the flow has executed.
    pub fn num_jobs(&self) -> usize {
        self.jobs.len()
    }

    /// Total records shuffled across all jobs — the paper's communication
    /// cost of the whole chain.
    pub fn total_shuffled_records(&self) -> u64 {
        self.totals.shuffle_records
    }

    /// The job names in execution order.
    pub fn job_names(&self) -> Vec<&str> {
        self.jobs.iter().map(|m| m.job_name.as_str()).collect()
    }
}

struct FlowInner {
    config: JobConfig,
    jobs: Mutex<Vec<JobMetrics>>,
    store: FlowStore,
    errors: Mutex<Vec<FlowError>>,
    anonymous_jobs: AtomicUsize,
    /// Lazily created side-data store (see [`FlowContext::side_store`]).
    side: Mutex<Option<DatasetStore>>,
}

impl Drop for FlowInner {
    fn drop(&mut self) {
        // Side data is transient by contract: whatever jobs parked there
        // (index partitions, vector chunks) dies with the flow.
        if let Some(store) = self.side.lock().take() {
            let _ = std::fs::remove_dir_all(store.root());
        }
    }
}

/// Shared state of a job chain: the [`JobConfig`] every job runs under,
/// the [`KvStore`] standing in for the distributed file system, and the
/// accumulated metrics of every executed job.
///
/// Cloning a `FlowContext` is cheap and every clone shares the same state,
/// so one context can be threaded through an entire pipeline (similarity
/// join, then every round of a matching algorithm) and report all jobs in
/// one [`FlowReport`].
#[derive(Clone)]
pub struct FlowContext {
    inner: Arc<FlowInner>,
}

impl std::fmt::Debug for FlowContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlowContext")
            .field("config", &self.inner.config)
            .field("jobs", &self.inner.jobs.lock().len())
            .field("persisted", &self.persisted_paths())
            .finish()
    }
}

impl FlowContext {
    /// Creates a flow whose jobs all run under `config`, persisting
    /// datasets in memory.  The config's `name` prefixes every job name of
    /// the chain.
    pub fn new(config: JobConfig) -> Self {
        FlowContext::with_store(config, FlowStore::Memory(KvStore::new()))
    }

    /// Creates a flow whose persisted datasets live in a file-backed store
    /// rooted at `dir` (created if missing): `persist` writes encoded
    /// records to disk and `load` streams them back, so chained jobs
    /// (similarity join → matching rounds) keep only the stage in flight
    /// in RAM.  Datasets already present under `dir` (e.g. from an earlier
    /// run) are visible to `load`.
    pub fn with_disk_store(
        config: JobConfig,
        dir: impl Into<PathBuf>,
    ) -> Result<Self, StorageError> {
        Ok(FlowContext::with_store(
            config,
            FlowStore::Disk(DatasetStore::open(dir)?),
        ))
    }

    fn with_store(config: JobConfig, store: FlowStore) -> Self {
        FlowContext {
            inner: Arc::new(FlowInner {
                config,
                jobs: Mutex::new(Vec::new()),
                store,
                errors: Mutex::new(Vec::new()),
                anonymous_jobs: AtomicUsize::new(0),
                side: Mutex::new(None),
            }),
        }
    }

    /// Creates a flow with a default config carrying the given name.
    pub fn named(name: impl Into<String>) -> Self {
        FlowContext::new(JobConfig::named(name))
    }

    /// The job configuration every job of this flow runs under.
    pub fn config(&self) -> &JobConfig {
        &self.inner.config
    }

    /// Number of jobs the flow has executed so far.  Combined with
    /// [`FlowContext::jobs_from`] this isolates the metrics of one
    /// sub-chain (e.g. one algorithm round) out of a longer flow.
    pub fn num_jobs(&self) -> usize {
        self.inner.jobs.lock().len()
    }

    /// The metrics of every job executed since `start` (a value previously
    /// returned by [`FlowContext::num_jobs`]), in execution order.
    pub fn jobs_from(&self, start: usize) -> Vec<JobMetrics> {
        let jobs = self.inner.jobs.lock();
        jobs.get(start..).unwrap_or_default().to_vec()
    }

    /// Snapshot of every executed job plus accumulated totals and any
    /// swallowed persistence errors.
    pub fn report(&self) -> FlowReport {
        FlowReport::new(
            self.inner.jobs.lock().clone(),
            self.inner.errors.lock().clone(),
        )
    }

    /// Creates a dataset from already materialized records.  The records
    /// are moved into the plan and handed to the first job untouched.
    pub fn dataset<K: Key, V: Value>(&self, records: Records<K, V>) -> Dataset<K, V> {
        Dataset {
            ctx: self.clone(),
            thunk: Box::new(move |_| records),
        }
    }

    /// Creates a dataset that lazily reads the records persisted at `path`
    /// (see [`Dataset::persist`]).  Reading a missing path yields an empty
    /// dataset, mirroring [`KvStore::read`] on a missing dataset — but a
    /// path persisted with a **different record type** is a pipeline bug:
    /// the typed [`FlowError`] is logged and recorded in the flow's
    /// [`FlowReport::errors`] (the dataset still materializes empty so the
    /// chain keeps running).  Callers that want the error in hand use
    /// [`FlowContext::read_persisted`].
    pub fn load<K: Key, V: Value>(&self, path: &str) -> Dataset<K, V> {
        let path = path.to_string();
        Dataset {
            ctx: self.clone(),
            thunk: Box::new(move |ctx| match ctx.read_persisted(&path) {
                Ok(records) => records,
                Err(FlowError::MissingDataset { .. }) => Vec::new(),
                Err(error) => {
                    eprintln!("flow `{}`: load failed: {error}", ctx.inner.config.name);
                    ctx.inner.errors.lock().push(error);
                    Vec::new()
                }
            }),
        }
    }

    /// Reads a persisted dataset back out of the flow's store, with typed
    /// errors for missing paths, record-type mismatches and storage
    /// failures.
    pub fn read_persisted<K: Key, V: Value>(&self, path: &str) -> Result<Records<K, V>, FlowError> {
        match &self.inner.store {
            FlowStore::Memory(store) => {
                let stored = store.read(path);
                let Some((any, stored_type)) = stored.first().cloned() else {
                    return Err(FlowError::MissingDataset {
                        path: path.to_string(),
                    });
                };
                match any.downcast::<Records<K, V>>() {
                    Ok(records) => Ok(records.as_ref().clone()),
                    Err(_) => Err(FlowError::TypeMismatch {
                        path: path.to_string(),
                        stored: stored_type.to_string(),
                        requested: std::any::type_name::<Records<K, V>>().to_string(),
                    }),
                }
            }
            FlowStore::Disk(store) => match store.read::<(K, V)>(path) {
                Ok(records) => Ok(records),
                Err(StorageError::Missing { name }) => {
                    Err(FlowError::MissingDataset { path: name })
                }
                Err(StorageError::TypeMismatch { stored, requested }) => {
                    Err(FlowError::TypeMismatch {
                        path: path.to_string(),
                        stored,
                        requested,
                    })
                }
                Err(other) => Err(FlowError::Storage {
                    path: path.to_string(),
                    message: other.to_string(),
                }),
            },
        }
    }

    /// The flow's *side-data* store: a disk-backed [`DatasetStore`] for
    /// data that jobs ship around outside the shuffle — the Hadoop
    /// distributed-cache role.  A job chain parks derived artifacts here
    /// (an inverted index in term-range partitions, a corpus in vector
    /// chunks) and later stages open them on demand instead of holding
    /// them in memory for the whole chain.
    ///
    /// The store is created lazily on first use — under the disk store's
    /// root for [`FlowContext::with_disk_store`] flows, under the system
    /// temp directory otherwise — is shared by every clone of the context,
    /// and is deleted when the flow drops: side data is transient, unlike
    /// [`Dataset::persist`] outputs.
    ///
    /// # Panics
    /// Panics when the store directory cannot be created (an environment
    /// failure, like a failed persist).
    pub fn side_store(&self) -> DatasetStore {
        static SIDE_SEQ: AtomicUsize = AtomicUsize::new(0);
        let mut guard = self.inner.side.lock();
        if let Some(store) = guard.as_ref() {
            return store.clone();
        }
        let dir = match &self.inner.store {
            FlowStore::Disk(store) => store.root().join("_side"),
            FlowStore::Memory(_) => std::env::temp_dir().join(format!(
                "smr-flow-side-{}-{}",
                std::process::id(),
                SIDE_SEQ.fetch_add(1, Ordering::Relaxed)
            )),
        };
        let store = DatasetStore::open(&dir)
            .unwrap_or_else(|e| panic!("failed to open flow side store at {dir:?}: {e}"));
        *guard = Some(store.clone());
        store
    }

    /// The paths of every persisted dataset, sorted.
    pub fn persisted_paths(&self) -> Vec<String> {
        match &self.inner.store {
            FlowStore::Memory(store) => store.paths(),
            FlowStore::Disk(store) => store.paths(),
        }
    }

    fn persist_records<K: Key, V: Value>(&self, path: &str, records: Records<K, V>) -> usize {
        let count = records.len();
        match &self.inner.store {
            FlowStore::Memory(store) => {
                let tagged: StoredDataset =
                    (Arc::new(records), std::any::type_name::<Records<K, V>>());
                store.write(path, vec![tagged]);
            }
            FlowStore::Disk(store) => {
                // A failed persist is an environment failure (disk full,
                // permissions), not a recoverable pipeline state.
                store
                    .write(path, &records)
                    .unwrap_or_else(|e| panic!("failed to persist `{path}`: {e}"));
            }
        }
        count
    }

    fn record_job(&self, metrics: JobMetrics) {
        self.inner.jobs.lock().push(metrics);
    }

    /// Resolves the name of the next job: `{config.name}-{stage}` for a
    /// named stage, `{config.name}-job-{n}` otherwise.
    fn job_name(&self, stage: Option<&str>) -> String {
        match stage {
            Some(stage) => format!("{}-{stage}", self.inner.config.name),
            None => {
                let n = self.inner.anonymous_jobs.fetch_add(1, Ordering::Relaxed);
                format!("{}-job-{n}", self.inner.config.name)
            }
        }
    }
}

/// A deferred chain of MapReduce jobs producing `(K, V)` records.
///
/// Nothing executes until a terminal — [`Dataset::collect`] or
/// [`Dataset::persist`] — runs the plan.  Each completed job hands its
/// output records to the next job *by move*; no stage clones or re-sorts
/// between jobs.
pub struct Dataset<K: Key, V: Value> {
    ctx: FlowContext,
    thunk: SourceThunk<K, V>,
}

impl<K: Key, V: Value> std::fmt::Debug for Dataset<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Dataset").field("ctx", &self.ctx).finish()
    }
}

impl<K: Key, V: Value> Dataset<K, V> {
    /// The flow this dataset belongs to.
    pub fn context(&self) -> &FlowContext {
        &self.ctx
    }

    /// Starts the next job of the chain by fixing its mapper.  The
    /// combiner and partitioner default to none / hash partitioning;
    /// [`JobStage::reduce_with`] completes the job.
    pub fn map_with<M>(self, mapper: M) -> DefaultJobStage<M>
    where
        M: Mapper<InKey = K, InValue = V> + 'static,
    {
        JobStage {
            ctx: self.ctx,
            input: self.thunk,
            mapper,
            combiner: None,
            partitioner: HashPartitioner::new(),
            stage_name: None,
            counters: None,
        }
    }

    /// Chains a continuation whose *plan* depends on this dataset's
    /// output: `build` receives the materialized records (moved) and the
    /// flow, and returns the dataset to execute next.  This is the general
    /// multi-job combinator for chains where a later job is constructed
    /// from an earlier job's output (side data, derived inputs); the
    /// continuation runs lazily, when the final terminal executes.
    ///
    /// The returned dataset runs under *its own* flow: a continuation
    /// built on a different [`FlowContext`] executes under that context's
    /// config and reports into that context, not this one's.
    pub fn then<K2, V2, F>(self, build: F) -> Dataset<K2, V2>
    where
        K2: Key,
        V2: Value,
        F: FnOnce(Records<K, V>, &FlowContext) -> Dataset<K2, V2> + 'static,
    {
        let Dataset { ctx, thunk } = self;
        Dataset {
            ctx,
            thunk: Box::new(move |ctx| {
                let records = thunk(ctx);
                // Honour the continuation's own context: a dataset built
                // on another flow must run (and report) there, not here.
                let Dataset {
                    ctx: next_ctx,
                    thunk: next_thunk,
                } = build(records, ctx);
                next_thunk(&next_ctx)
            }),
        }
    }

    /// Terminal: executes every job of the chain and returns the final
    /// records.  Metrics of every executed job land in the flow's
    /// [`FlowReport`].
    pub fn collect(self) -> Records<K, V> {
        let Dataset { ctx, thunk } = self;
        thunk(&ctx)
    }

    /// Terminal: executes the chain and persists the final records in the
    /// flow's [`KvStore`] under `path` (readable again with
    /// [`FlowContext::load`]).  Returns the number of records persisted.
    pub fn persist(self, path: &str) -> usize {
        let Dataset { ctx, thunk } = self;
        let records = thunk(&ctx);
        ctx.persist_records(path, records)
    }
}

/// The [`JobStage`] produced by [`Dataset::map_with`]: no combiner yet,
/// hash partitioning.
pub type DefaultJobStage<M> = JobStage<
    M,
    IdentityCombiner<<M as Mapper>::OutKey, <M as Mapper>::OutValue>,
    HashPartitioner<<M as Mapper>::OutKey>,
>;

/// One MapReduce job under construction inside a [`Dataset`] chain: the
/// mapper is fixed, the combiner and partitioner are optional, and
/// [`JobStage::reduce_with`] seals the job.
pub struct JobStage<M: Mapper, C, P> {
    ctx: FlowContext,
    input: SourceThunk<M::InKey, M::InValue>,
    mapper: M,
    combiner: Option<C>,
    partitioner: P,
    stage_name: Option<String>,
    counters: Option<Counters>,
}

impl<M: Mapper, C, P> std::fmt::Debug for JobStage<M, C, P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobStage")
            .field("stage_name", &self.stage_name)
            .finish()
    }
}

impl<M, C, P> JobStage<M, C, P>
where
    M: Mapper + 'static,
    C: Combiner<Key = M::OutKey, Value = M::OutValue> + 'static,
    P: Partitioner<M::OutKey> + 'static,
{
    /// Names this job: the executed job is called `{flow name}-{name}` and
    /// shows up under that name in the [`FlowReport`].
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.stage_name = Some(name.into());
        self
    }

    /// Adds a map-side combiner (applied while partitioning and again
    /// across sorted runs during the merge, exactly as
    /// [`Job::run_with_combiner`] would).
    pub fn combined_with<C2>(self, combiner: C2) -> JobStage<M, C2, P>
    where
        C2: Combiner<Key = M::OutKey, Value = M::OutValue> + 'static,
    {
        JobStage {
            ctx: self.ctx,
            input: self.input,
            mapper: self.mapper,
            combiner: Some(combiner),
            partitioner: self.partitioner,
            stage_name: self.stage_name,
            counters: self.counters,
        }
    }

    /// Replaces the default hash partitioner.
    pub fn partitioned_by<P2>(self, partitioner: P2) -> JobStage<M, C, P2>
    where
        P2: Partitioner<M::OutKey> + 'static,
    {
        JobStage {
            ctx: self.ctx,
            input: self.input,
            mapper: self.mapper,
            combiner: self.combiner,
            partitioner,
            stage_name: self.stage_name,
            counters: self.counters,
        }
    }

    /// Runs the job with an externally supplied [`Counters`] set instead
    /// of a fresh one.  User counters bumped from map/reduce code holding
    /// a clone of the same set (e.g. domain counters like pruned
    /// candidates) are snapshotted into the job's
    /// [`JobMetrics::user_counters`] when the job completes, alongside the
    /// built-in counters.
    pub fn with_counters(mut self, counters: Counters) -> Self {
        self.counters = Some(counters);
        self
    }

    /// Seals the job with its reducer, yielding the next dataset of the
    /// chain.  The job itself runs only when a terminal executes the
    /// chain; its metrics are recorded in the flow.
    pub fn reduce_with<R>(self, reducer: R) -> Dataset<R::OutKey, R::OutValue>
    where
        R: Reducer<Key = M::OutKey, InValue = M::OutValue> + 'static,
    {
        let JobStage {
            ctx,
            input,
            mapper,
            combiner,
            partitioner,
            stage_name,
            counters,
        } = self;
        Dataset {
            ctx,
            thunk: Box::new(move |ctx| {
                let records = input(ctx);
                let name = ctx.job_name(stage_name.as_deref());
                let job = Job::new(ctx.config().clone().with_name(name));
                let result = job.run_full(
                    &mapper,
                    combiner.as_ref(),
                    &reducer,
                    &partitioner,
                    records,
                    counters.unwrap_or_default(),
                );
                ctx.record_job(result.metrics);
                result.output
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::Job;
    use crate::types::Emitter;

    struct SplitWords;
    impl Mapper for SplitWords {
        type InKey = usize;
        type InValue = String;
        type OutKey = String;
        type OutValue = u64;
        fn map(&self, _k: &usize, text: &String, out: &mut Emitter<String, u64>) {
            for w in text.split_whitespace() {
                out.emit(w.to_string(), 1);
            }
        }
    }

    struct SumCounts;
    impl Reducer for SumCounts {
        type Key = String;
        type InValue = u64;
        type OutKey = String;
        type OutValue = u64;
        fn reduce(&self, k: &String, vs: &[u64], out: &mut Emitter<String, u64>) {
            out.emit(k.clone(), vs.iter().sum());
        }
    }

    struct SumCombiner;
    impl Combiner for SumCombiner {
        type Key = String;
        type Value = u64;
        fn combine(&self, _k: &String, vs: &[u64]) -> Vec<u64> {
            vec![vs.iter().sum()]
        }
    }

    /// Keeps only words above a count threshold, re-keyed by count.
    struct ThresholdMapper(u64);
    impl Mapper for ThresholdMapper {
        type InKey = String;
        type InValue = u64;
        type OutKey = u64;
        type OutValue = String;
        fn map(&self, word: &String, count: &u64, out: &mut Emitter<u64, String>) {
            if *count >= self.0 {
                out.emit(*count, word.clone());
            }
        }
    }

    struct JoinWords;
    impl Reducer for JoinWords {
        type Key = u64;
        type InValue = String;
        type OutKey = u64;
        type OutValue = String;
        fn reduce(&self, count: &u64, words: &[String], out: &mut Emitter<u64, String>) {
            let mut words = words.to_vec();
            words.sort();
            out.emit(*count, words.join(" "));
        }
    }

    fn input() -> Vec<(usize, String)> {
        vec![
            (0, "the quick brown fox".to_string()),
            (1, "the lazy dog".to_string()),
            (2, "the quick dog".to_string()),
        ]
    }

    fn config() -> JobConfig {
        JobConfig::named("flow-test").with_threads(2)
    }

    #[test]
    fn single_job_chain_matches_direct_job_execution() {
        let direct =
            Job::new(config().with_name("flow-test-wc")).run(&SplitWords, &SumCounts, input());

        let flow = FlowContext::new(config());
        let chained = flow
            .dataset(input())
            .map_with(SplitWords)
            .named("wc")
            .reduce_with(SumCounts)
            .collect();

        assert_eq!(chained, direct.output, "flow output must be byte-identical");
        let report = flow.report();
        assert_eq!(report.num_jobs(), 1);
        assert_eq!(report.jobs[0].job_name, "flow-test-wc");
        assert_eq!(
            report.jobs[0].shuffle_records,
            direct.metrics.shuffle_records
        );
        assert_eq!(
            report.total_shuffled_records(),
            direct.metrics.shuffle_records
        );
    }

    #[test]
    fn nothing_runs_until_a_terminal_executes() {
        let flow = FlowContext::new(config());
        let pending = flow
            .dataset(input())
            .map_with(SplitWords)
            .reduce_with(SumCounts);
        assert_eq!(flow.num_jobs(), 0, "plan building must not execute jobs");
        let _ = pending.collect();
        assert_eq!(flow.num_jobs(), 1);
    }

    #[test]
    fn two_job_chain_moves_records_between_jobs() {
        let flow = FlowContext::new(config());
        let output = flow
            .dataset(input())
            .map_with(SplitWords)
            .named("count")
            .combined_with(SumCombiner)
            .reduce_with(SumCounts)
            .map_with(ThresholdMapper(2))
            .named("frequent")
            .reduce_with(JoinWords)
            .collect();

        let mut output = output;
        output.sort();
        assert_eq!(
            output,
            vec![(2, "dog quick".to_string()), (3, "the".to_string())]
        );
        let report = flow.report();
        assert_eq!(report.num_jobs(), 2);
        assert_eq!(
            report.job_names(),
            vec!["flow-test-count", "flow-test-frequent"]
        );
        // Job 2's input is job 1's output, moved: its map input count must
        // equal job 1's reduce output count.
        assert_eq!(
            report.jobs[1].map_input_records,
            report.jobs[0].reduce_output_records
        );
    }

    #[test]
    fn then_builds_the_next_job_from_the_previous_output() {
        let flow = FlowContext::new(config());
        let output = flow
            .dataset(input())
            .map_with(SplitWords)
            .reduce_with(SumCounts)
            .then(|counts, flow| {
                // Side data derived from job 1's output, shipped into job
                // 2's mapper — the similarity-join pattern.
                let max = counts.iter().map(|(_, c)| *c).max().unwrap_or(0);
                flow.dataset(counts)
                    .map_with(ThresholdMapper(max))
                    .reduce_with(JoinWords)
            })
            .collect();
        assert_eq!(output, vec![(3, "the".to_string())]);
        assert_eq!(flow.report().num_jobs(), 2);
    }

    #[test]
    fn then_continuation_on_another_flow_reports_there() {
        let outer = FlowContext::new(config());
        let inner = FlowContext::new(config().with_name("inner-flow"));
        let inner_clone = inner.clone();
        let _ = outer
            .dataset(input())
            .map_with(SplitWords)
            .reduce_with(SumCounts)
            .then(move |counts, _| {
                inner_clone
                    .dataset(counts)
                    .map_with(ThresholdMapper(1))
                    .named("inner")
                    .reduce_with(JoinWords)
            })
            .collect();
        // Job 1 ran under the outer flow, the continuation under its own.
        assert_eq!(outer.num_jobs(), 1);
        assert_eq!(inner.num_jobs(), 1);
        assert_eq!(inner.report().job_names(), vec!["inner-flow-inner"]);
    }

    /// The persist/load contract is identical for both store backends.
    fn check_persist_and_load(flow: FlowContext) {
        let written = flow
            .dataset(input())
            .map_with(SplitWords)
            .reduce_with(SumCounts)
            .persist("iteration-0/counts");
        assert!(written > 0);
        assert_eq!(
            flow.persisted_paths(),
            vec!["iteration-0/counts".to_string()]
        );

        let reloaded: Vec<(String, u64)> = flow.load("iteration-0/counts").collect();
        assert_eq!(reloaded.len(), written);
        let the = reloaded.iter().find(|(w, _)| w == "the").expect("the");
        assert_eq!(the.1, 3);

        // Missing paths read as empty (like an empty part-file directory)
        // and are NOT recorded as errors…
        let missing: Vec<(String, u64)> = flow.load("nope").collect();
        assert!(missing.is_empty());
        assert!(flow.report().errors.is_empty());
        assert!(matches!(
            flow.read_persisted::<String, u64>("nope"),
            Err(FlowError::MissingDataset { .. })
        ));

        // …but a type-mismatched load is a surfaced pipeline bug: typed
        // error from read_persisted, recorded in the report by load.
        assert!(matches!(
            flow.read_persisted::<u64, u64>("iteration-0/counts"),
            Err(FlowError::TypeMismatch { .. })
        ));
        let wrong_type: Vec<(u64, u64)> = flow.load("iteration-0/counts").collect();
        assert!(wrong_type.is_empty());
        let errors = flow.report().errors;
        assert_eq!(errors.len(), 1, "{errors:?}");
        assert!(matches!(&errors[0], FlowError::TypeMismatch { path, .. }
            if path == "iteration-0/counts"));
    }

    #[test]
    fn persist_and_load_round_trip_through_the_memory_store() {
        check_persist_and_load(FlowContext::new(config()));
    }

    #[test]
    fn persist_and_load_round_trip_through_the_disk_store() {
        let dir = std::env::temp_dir().join(format!("smr-flow-disk-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        check_persist_and_load(FlowContext::with_disk_store(config(), &dir).unwrap());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn disk_persisted_datasets_survive_the_flow_that_wrote_them() {
        let dir = std::env::temp_dir().join(format!("smr-flow-surv-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let flow = FlowContext::with_disk_store(config(), &dir).unwrap();
            let _ = flow
                .dataset(input())
                .map_with(SplitWords)
                .reduce_with(SumCounts)
                .persist("stage-1/counts");
        }
        // A fresh flow over the same directory sees the dataset.
        let flow = FlowContext::with_disk_store(config(), &dir).unwrap();
        let counts = flow
            .read_persisted::<String, u64>("stage-1/counts")
            .unwrap();
        assert!(counts.iter().any(|(w, c)| w == "the" && *c == 3));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn external_counters_land_in_the_job_metrics() {
        struct CountingMapper(Counters);
        impl Mapper for CountingMapper {
            type InKey = usize;
            type InValue = String;
            type OutKey = String;
            type OutValue = u64;
            fn map(&self, _k: &usize, text: &String, out: &mut Emitter<String, u64>) {
                for w in text.split_whitespace() {
                    self.0.add("words_seen", 1);
                    out.emit(w.to_string(), 1);
                }
            }
        }
        let flow = FlowContext::new(config());
        let counters = Counters::new();
        counters.add("partitions_prepared", 3);
        let _ = flow
            .dataset(input())
            .map_with(CountingMapper(counters.clone()))
            .named("counted")
            .with_counters(counters.clone())
            .reduce_with(SumCounts)
            .collect();
        let job = &flow.report().jobs[0];
        assert_eq!(job.user_counters["words_seen"], 10);
        assert_eq!(job.user_counters["partitions_prepared"], 3);
        assert_eq!(counters.get("words_seen"), 10);
    }

    #[test]
    fn side_store_is_shared_lazy_and_removed_with_the_flow() {
        let side_root;
        {
            let flow = FlowContext::new(config());
            let store = flow.side_store();
            side_root = store.root().to_path_buf();
            store.write("chunk-0", &[1u64, 2]).unwrap();
            // Clones see the same store (and the same datasets).
            assert_eq!(
                flow.clone().side_store().read::<u64>("chunk-0").unwrap(),
                [1, 2]
            );
            // Side data never shows up among persisted datasets.
            assert!(flow.persisted_paths().is_empty());
        }
        assert!(
            !side_root.exists(),
            "side data must not survive the flow that wrote it"
        );
    }

    #[test]
    fn disk_flow_side_store_lives_under_the_store_root_and_is_transient() {
        let dir = std::env::temp_dir().join(format!("smr-flow-sidedisk-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let flow = FlowContext::with_disk_store(config(), &dir).unwrap();
            let side = flow.side_store();
            assert!(side.root().starts_with(&dir));
            side.write("x", &[7u8]).unwrap();
            let _ = flow
                .dataset(input())
                .map_with(SplitWords)
                .reduce_with(SumCounts)
                .persist("kept");
            // Side data stays invisible to the persisted namespace.
            assert_eq!(flow.persisted_paths(), vec!["kept".to_string()]);
        }
        // The persisted dataset survives; the side data does not.
        let reopened = FlowContext::with_disk_store(config(), &dir).unwrap();
        assert_eq!(reopened.persisted_paths(), vec!["kept".to_string()]);
        assert!(!dir.join("_side").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn clones_share_jobs_and_store() {
        let flow = FlowContext::new(config());
        let clone = flow.clone();
        let _ = clone
            .dataset(input())
            .map_with(SplitWords)
            .reduce_with(SumCounts)
            .persist("shared");
        assert_eq!(flow.num_jobs(), 1);
        assert!(flow.read_persisted::<String, u64>("shared").is_ok());
    }

    #[test]
    fn jobs_from_isolates_a_sub_chain() {
        let flow = FlowContext::new(config());
        let _ = flow
            .dataset(input())
            .map_with(SplitWords)
            .reduce_with(SumCounts)
            .collect();
        let start = flow.num_jobs();
        let _ = flow
            .dataset(input())
            .map_with(SplitWords)
            .named("second")
            .reduce_with(SumCounts)
            .collect();
        let since = flow.jobs_from(start);
        assert_eq!(since.len(), 1);
        assert_eq!(since[0].job_name, "flow-test-second");
        assert!(flow.jobs_from(99).is_empty());
    }

    #[test]
    fn anonymous_jobs_get_sequential_names() {
        let flow = FlowContext::named("anon");
        for _ in 0..2 {
            let _ = flow
                .dataset(input())
                .map_with(SplitWords)
                .reduce_with(SumCounts)
                .collect();
        }
        assert_eq!(flow.report().job_names(), vec!["anon-job-0", "anon-job-1"]);
    }

    #[test]
    fn custom_partitioner_is_honoured() {
        #[derive(Clone, Copy)]
        struct FirstByte;
        impl Partitioner<String> for FirstByte {
            fn partition(&self, key: &String, num_partitions: usize) -> usize {
                key.as_bytes().first().map(|b| *b as usize).unwrap_or(0) % num_partitions
            }
        }
        let flow = FlowContext::new(config().with_reduce_tasks(2));
        let mut via_flow = flow
            .dataset(input())
            .map_with(SplitWords)
            .partitioned_by(FirstByte)
            .reduce_with(SumCounts)
            .collect();
        via_flow.sort();
        let direct = Job::new(config().with_reduce_tasks(2)).run_full(
            &SplitWords,
            None::<&IdentityCombiner<String, u64>>,
            &SumCounts,
            &FirstByte,
            input(),
            Counters::new(),
        );
        let mut direct_out = direct.output;
        direct_out.sort();
        assert_eq!(via_flow, direct_out);
    }
}
