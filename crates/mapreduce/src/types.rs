//! Core traits of the MapReduce programming model.
//!
//! The signatures mirror Section 3.1 of the paper:
//!
//! ```text
//! map    : <k1, v1>   -> [<k2, v2>]
//! reduce : <k2, [v2]> -> [<k3, v3>]
//! ```
//!
//! User code implements [`Mapper`] and [`Reducer`] (and optionally
//! [`Combiner`]) and hands them to [`crate::Job::run`].  Emission goes
//! through an [`Emitter`] so that the engine can count output records and
//! avoid intermediate allocations in user code.

use std::hash::Hash;

pub use smr_storage::Codec;

/// Bound alias for types usable as keys.
///
/// Keys must be orderable (the shuffle sorts each reduce partition by key,
/// exactly as Hadoop presents keys to reducers in sorted order), hashable
/// (for hash partitioning), cloneable/sendable (the engine moves them
/// across worker threads) and encodable ([`Codec`]): under a memory budget
/// the shuffle spills sorted runs to disk, and the flow layer persists
/// datasets in a file-backed store, so every key must have a canonical
/// binary encoding.  Primitives, `String`, tuples and `Vec`s come with one;
/// user types get theirs via `smr_storage::impl_codec_struct!`.
pub trait Key: Clone + Send + Sync + Ord + Hash + Codec + 'static {}
impl<T: Clone + Send + Sync + Ord + Hash + Codec + 'static> Key for T {}

/// Bound alias for types usable as values.  Values must be encodable for
/// the same reason keys are (see [`Key`]).
pub trait Value: Clone + Send + Sync + Codec + 'static {}
impl<T: Clone + Send + Sync + Codec + 'static> Value for T {}

/// Collects the key-value pairs emitted by a map or reduce invocation.
///
/// An `Emitter` is handed to every [`Mapper::map`] and [`Reducer::reduce`]
/// call; everything emitted is owned by the engine afterwards.
#[derive(Debug)]
pub struct Emitter<K, V> {
    pairs: Vec<(K, V)>,
}

impl<K, V> Emitter<K, V> {
    /// Creates an empty emitter.
    pub fn new() -> Self {
        Emitter { pairs: Vec::new() }
    }

    /// Creates an emitter with pre-reserved capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        Emitter {
            pairs: Vec::with_capacity(capacity),
        }
    }

    /// Emits one key-value pair.
    #[inline]
    pub fn emit(&mut self, key: K, value: V) {
        self.pairs.push((key, value));
    }

    /// Number of pairs emitted so far.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether nothing has been emitted.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Consumes the emitter and returns the emitted pairs.
    pub fn into_pairs(self) -> Vec<(K, V)> {
        self.pairs
    }

    /// Drains the emitted pairs, leaving the emitter empty but reusable.
    pub fn drain(&mut self) -> Vec<(K, V)> {
        std::mem::take(&mut self.pairs)
    }

    /// Calls `f` with every emitted pair and clears the emitter, keeping
    /// its allocation for reuse.  This is the per-record hot path of the
    /// streaming executor, which routes each pair straight into a
    /// partition buffer instead of materialising a task-sized vector.
    pub fn drain_each(&mut self, mut f: impl FnMut(K, V)) {
        for (key, value) in self.pairs.drain(..) {
            f(key, value);
        }
    }
}

impl<K, V> Default for Emitter<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

/// The user-defined map function.
///
/// Implementations must be `Send + Sync`: the engine calls `map` from many
/// worker threads concurrently (each call on a different input record).
pub trait Mapper: Send + Sync {
    /// Input key type (`k1`).
    type InKey: Key;
    /// Input value type (`v1`).
    type InValue: Value;
    /// Intermediate key type (`k2`).
    type OutKey: Key;
    /// Intermediate value type (`v2`).
    type OutValue: Value;

    /// Processes one input record, emitting any number of intermediate
    /// pairs.
    fn map(
        &self,
        key: &Self::InKey,
        value: &Self::InValue,
        out: &mut Emitter<Self::OutKey, Self::OutValue>,
    );
}

/// The user-defined reduce function.
///
/// For every intermediate key the engine collects all values (from all map
/// tasks) and calls `reduce` exactly once with the full value list.
pub trait Reducer: Send + Sync {
    /// Intermediate key type (`k2`).
    type Key: Key;
    /// Intermediate value type (`v2`).
    type InValue: Value;
    /// Output key type (`k3`).
    type OutKey: Key;
    /// Output value type (`v3`).
    type OutValue: Value;

    /// Processes one key group.
    fn reduce(
        &self,
        key: &Self::Key,
        values: &[Self::InValue],
        out: &mut Emitter<Self::OutKey, Self::OutValue>,
    );
}

/// An optional map-side combiner.
///
/// A combiner is applied to the output of every map *task* before the
/// shuffle, reducing the number of records that must be moved.  It must be
/// semantically idempotent with respect to the reducer: applying the
/// combiner any number of times must not change the final reduce output.
pub trait Combiner: Send + Sync {
    /// Intermediate key type.
    type Key: Key;
    /// Intermediate value type.
    type Value: Value;

    /// Combines all values for `key` produced by a single map task into a
    /// (typically shorter) list of values.
    fn combine(&self, key: &Self::Key, values: &[Self::Value]) -> Vec<Self::Value>;

    /// Whether this combiner passes every value through unchanged.
    ///
    /// The executor skips the combine machinery entirely for identity
    /// combiners (no per-group `values.to_vec()`, no combining buffer
    /// spills, no merge-side combine) — the job behaves exactly as if no
    /// combiner was configured, which is semantically identical for any
    /// correct identity implementation.  Defaults to `false`; only
    /// implementations that truly emit their input verbatim may return
    /// `true`.
    fn is_identity(&self) -> bool {
        false
    }
}

/// A combiner that performs no combining (every value passes through).
///
/// Useful as the default when a job has no combiner: the engine treats it
/// as a no-op and skips the combine pass entirely.
#[derive(Debug, Clone, Copy, Default)]
pub struct IdentityCombiner<K, V> {
    _marker: std::marker::PhantomData<fn() -> (K, V)>,
}

impl<K, V> IdentityCombiner<K, V> {
    /// Creates the identity combiner.
    pub fn new() -> Self {
        IdentityCombiner {
            _marker: std::marker::PhantomData,
        }
    }
}

impl<K: Key, V: Value> Combiner for IdentityCombiner<K, V> {
    type Key = K;
    type Value = V;

    fn combine(&self, _key: &K, values: &[V]) -> Vec<V> {
        values.to_vec()
    }

    fn is_identity(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emitter_collects_pairs_in_order() {
        let mut e: Emitter<u32, &'static str> = Emitter::new();
        assert!(e.is_empty());
        e.emit(2, "b");
        e.emit(1, "a");
        assert_eq!(e.len(), 2);
        assert_eq!(e.into_pairs(), vec![(2, "b"), (1, "a")]);
    }

    #[test]
    fn emitter_drain_each_visits_pairs_in_order_and_clears() {
        let mut e: Emitter<u32, u32> = Emitter::new();
        e.emit(1, 10);
        e.emit(2, 20);
        let mut seen = Vec::new();
        e.drain_each(|k, v| seen.push((k, v)));
        assert_eq!(seen, vec![(1, 10), (2, 20)]);
        assert!(e.is_empty());
        e.emit(3, 30);
        assert_eq!(e.len(), 1);
    }

    #[test]
    fn emitter_drain_resets_but_is_reusable() {
        let mut e: Emitter<u8, u8> = Emitter::with_capacity(4);
        e.emit(1, 1);
        let first = e.drain();
        assert_eq!(first, vec![(1, 1)]);
        assert!(e.is_empty());
        e.emit(2, 2);
        assert_eq!(e.drain(), vec![(2, 2)]);
    }

    #[test]
    fn identity_combiner_passes_values_through() {
        let c: IdentityCombiner<u32, u32> = IdentityCombiner::new();
        let vals = vec![3, 1, 2];
        assert_eq!(c.combine(&0, &vals), vals);
    }
}
