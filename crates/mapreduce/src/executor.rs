//! The parallel job executor: map → combine → partition → sort → group →
//! reduce.
//!
//! The executor is an in-process model of a Hadoop job.  The input is split
//! into map tasks; worker threads execute map tasks, apply the optional
//! combiner per task, and partition the intermediate pairs; the shuffle
//! concatenates and sorts each reduce partition; worker threads then execute
//! reduce tasks.  Record counts and per-phase wall time are recorded in
//! [`JobMetrics`].

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use parking_lot::Mutex;

use crate::config::JobConfig;
use crate::counters::{builtin, Counters};
use crate::metrics::{JobMetrics, PhaseTimings};
use crate::partition::{HashPartitioner, Partitioner};
use crate::types::{Combiner, Emitter, Mapper, Reducer};

/// One map task's output: a bucket of intermediate pairs per reduce
/// partition.
type TaskBuckets<K, V> = Vec<Vec<(K, V)>>;

/// The output of a completed job.
#[derive(Debug, Clone)]
pub struct JobResult<K, V> {
    /// All pairs emitted by the reducers, in partition order (records within
    /// a partition appear in key order when `sort_reduce_input` is set).
    pub output: Vec<(K, V)>,
    /// Engine-level metrics (record counts, timings).
    pub metrics: JobMetrics,
    /// The counter set shared with the tasks (includes built-in counters
    /// and any user counters bumped from map/reduce code).
    pub counters: Counters,
}

/// A configured MapReduce job, ready to run user functions over an input.
#[derive(Debug, Clone, Default)]
pub struct Job {
    config: JobConfig,
}

impl Job {
    /// Creates a job with the given configuration.
    pub fn new(config: JobConfig) -> Self {
        Job { config }
    }

    /// The job configuration.
    pub fn config(&self) -> &JobConfig {
        &self.config
    }

    /// Runs the job with no combiner and hash partitioning.
    pub fn run<M, R>(
        &self,
        mapper: &M,
        reducer: &R,
        input: Vec<(M::InKey, M::InValue)>,
    ) -> JobResult<R::OutKey, R::OutValue>
    where
        M: Mapper,
        R: Reducer<Key = M::OutKey, InValue = M::OutValue>,
    {
        self.run_full(
            mapper,
            None::<&crate::types::IdentityCombiner<M::OutKey, M::OutValue>>,
            reducer,
            &HashPartitioner::new(),
            input,
            Counters::new(),
        )
    }

    /// Runs the job with a map-side combiner and hash partitioning.
    pub fn run_with_combiner<M, C, R>(
        &self,
        mapper: &M,
        combiner: &C,
        reducer: &R,
        input: Vec<(M::InKey, M::InValue)>,
    ) -> JobResult<R::OutKey, R::OutValue>
    where
        M: Mapper,
        C: Combiner<Key = M::OutKey, Value = M::OutValue>,
        R: Reducer<Key = M::OutKey, InValue = M::OutValue>,
    {
        self.run_full(
            mapper,
            Some(combiner),
            reducer,
            &HashPartitioner::new(),
            input,
            Counters::new(),
        )
    }

    /// Runs the job with every knob exposed: optional combiner, custom
    /// partitioner and an externally supplied counter set (so iterative
    /// algorithms can accumulate user counters across rounds).
    pub fn run_full<M, C, R, P>(
        &self,
        mapper: &M,
        combiner: Option<&C>,
        reducer: &R,
        partitioner: &P,
        input: Vec<(M::InKey, M::InValue)>,
        counters: Counters,
    ) -> JobResult<R::OutKey, R::OutValue>
    where
        M: Mapper,
        C: Combiner<Key = M::OutKey, Value = M::OutValue>,
        R: Reducer<Key = M::OutKey, InValue = M::OutValue>,
        P: Partitioner<M::OutKey>,
    {
        let num_threads = self.config.effective_threads();
        let num_map_tasks = self.config.effective_map_tasks(input.len());
        let num_reduce_tasks = self.config.effective_reduce_tasks();

        let mut metrics = JobMetrics {
            job_name: self.config.name.clone(),
            map_tasks: num_map_tasks,
            reduce_tasks: num_reduce_tasks,
            ..JobMetrics::default()
        };
        counters.add(builtin::MAP_INPUT_RECORDS, input.len() as u64);
        metrics.map_input_records = input.len() as u64;

        // ------------------------------------------------------------------
        // Map phase (parallel over map tasks).  Each task produces one
        // bucket of (key, value) pairs per reduce partition.
        // ------------------------------------------------------------------
        let map_start = Instant::now();
        let splits = split_input(input, num_map_tasks);
        let task_outputs: Mutex<Vec<TaskBuckets<M::OutKey, M::OutValue>>> =
            Mutex::new(Vec::with_capacity(num_map_tasks));
        let next_task = AtomicUsize::new(0);
        let splits_ref = &splits;

        crossbeam::thread::scope(|scope| {
            for _ in 0..num_threads.min(num_map_tasks) {
                scope.spawn(|_| loop {
                    let idx = next_task.fetch_add(1, Ordering::Relaxed);
                    if idx >= splits_ref.len() {
                        break;
                    }
                    let split = &splits_ref[idx];
                    let mut emitter = Emitter::new();
                    for (k, v) in split {
                        mapper.map(k, v, &mut emitter);
                    }
                    let emitted = emitter.into_pairs();
                    counters.add(builtin::MAP_OUTPUT_RECORDS, emitted.len() as u64);

                    let combined = match combiner {
                        Some(c) => combine_task_output(c, emitted),
                        None => emitted,
                    };
                    counters.add(builtin::COMBINE_OUTPUT_RECORDS, combined.len() as u64);

                    let mut buckets: TaskBuckets<M::OutKey, M::OutValue> =
                        (0..num_reduce_tasks).map(|_| Vec::new()).collect();
                    for (k, v) in combined {
                        let p = partitioner.partition(&k, num_reduce_tasks);
                        buckets[p].push((k, v));
                    }
                    task_outputs.lock().push(buckets);
                });
            }
        })
        .expect("map worker thread panicked");
        metrics.timings.map = map_start.elapsed();

        // ------------------------------------------------------------------
        // Shuffle: merge the per-task buckets into per-partition runs,
        // sort by key and group.
        // ------------------------------------------------------------------
        let shuffle_start = Instant::now();
        let task_outputs = task_outputs.into_inner();
        let mut partitions: Vec<Vec<(M::OutKey, M::OutValue)>> =
            (0..num_reduce_tasks).map(|_| Vec::new()).collect();
        for buckets in task_outputs {
            for (p, bucket) in buckets.into_iter().enumerate() {
                partitions[p].extend(bucket);
            }
        }
        let shuffled: u64 = partitions.iter().map(|p| p.len() as u64).sum();
        counters.add(builtin::SHUFFLE_RECORDS, shuffled);
        if self.config.sort_reduce_input {
            for partition in &mut partitions {
                partition.sort_by(|a, b| a.0.cmp(&b.0));
            }
        }
        metrics.timings.shuffle = shuffle_start.elapsed();

        // ------------------------------------------------------------------
        // Reduce phase (parallel over partitions).
        // ------------------------------------------------------------------
        let reduce_start = Instant::now();
        type PartitionResults<K, V> = Mutex<Vec<(usize, Vec<(K, V)>)>>;
        let partition_results: PartitionResults<R::OutKey, R::OutValue> =
            Mutex::new(Vec::with_capacity(num_reduce_tasks));
        let next_partition = AtomicUsize::new(0);
        let partitions_ref = &partitions;

        crossbeam::thread::scope(|scope| {
            for _ in 0..num_threads.min(num_reduce_tasks) {
                scope.spawn(|_| loop {
                    let idx = next_partition.fetch_add(1, Ordering::Relaxed);
                    if idx >= partitions_ref.len() {
                        break;
                    }
                    let partition = &partitions_ref[idx];
                    let mut emitter = Emitter::new();
                    let mut groups = 0u64;
                    for (key, values) in group_by_key(partition, self.config.sort_reduce_input) {
                        reducer.reduce(key, &values, &mut emitter);
                        groups += 1;
                    }
                    counters.add(builtin::REDUCE_INPUT_GROUPS, groups);
                    let out = emitter.into_pairs();
                    counters.add(builtin::REDUCE_OUTPUT_RECORDS, out.len() as u64);
                    partition_results.lock().push((idx, out));
                });
            }
        })
        .expect("reduce worker thread panicked");

        let mut partition_results = partition_results.into_inner();
        partition_results.sort_by_key(|(idx, _)| *idx);
        let output: Vec<(R::OutKey, R::OutValue)> = partition_results
            .into_iter()
            .flat_map(|(_, out)| out)
            .collect();
        metrics.timings.reduce = reduce_start.elapsed();

        metrics.map_output_records = counters.get(builtin::MAP_OUTPUT_RECORDS);
        metrics.shuffle_records = counters.get(builtin::SHUFFLE_RECORDS);
        metrics.reduce_input_groups = counters.get(builtin::REDUCE_INPUT_GROUPS);
        metrics.reduce_output_records = counters.get(builtin::REDUCE_OUTPUT_RECORDS);
        metrics.user_counters = counters.snapshot();
        metrics.timings = PhaseTimings {
            map: metrics.timings.map,
            shuffle: metrics.timings.shuffle,
            reduce: metrics.timings.reduce,
        };

        JobResult {
            output,
            metrics,
            counters,
        }
    }
}

/// Splits the input into `num_tasks` contiguous, near-equal chunks.
fn split_input<K, V>(input: Vec<(K, V)>, num_tasks: usize) -> Vec<Vec<(K, V)>> {
    if input.is_empty() {
        return vec![Vec::new()];
    }
    let num_tasks = num_tasks.max(1).min(input.len());
    let chunk = input.len().div_ceil(num_tasks);
    let mut splits = Vec::with_capacity(num_tasks);
    let mut it = input.into_iter();
    loop {
        let split: Vec<(K, V)> = it.by_ref().take(chunk).collect();
        if split.is_empty() {
            break;
        }
        splits.push(split);
    }
    splits
}

/// Applies a combiner to one map task's output: groups the pairs by key and
/// replaces each group's values by the combiner's output.
fn combine_task_output<C: Combiner>(
    combiner: &C,
    mut pairs: Vec<(C::Key, C::Value)>,
) -> Vec<(C::Key, C::Value)> {
    pairs.sort_by(|a, b| a.0.cmp(&b.0));
    let mut out = Vec::with_capacity(pairs.len());
    let mut i = 0;
    while i < pairs.len() {
        let mut j = i + 1;
        while j < pairs.len() && pairs[j].0 == pairs[i].0 {
            j += 1;
        }
        let key = pairs[i].0.clone();
        let values: Vec<C::Value> = pairs[i..j].iter().map(|(_, v)| v.clone()).collect();
        for v in combiner.combine(&key, &values) {
            out.push((key.clone(), v));
        }
        i = j;
    }
    out
}

/// Iterates over `(key, values)` groups of a partition.
///
/// When the partition is sorted, equal keys are adjacent and the grouping is
/// a single pass; otherwise a full scan per distinct key would be wrong, so
/// we sort a copy of the indices instead.
fn group_by_key<K: Ord + Clone, V: Clone>(partition: &[(K, V)], sorted: bool) -> Vec<(&K, Vec<V>)> {
    if partition.is_empty() {
        return Vec::new();
    }
    if sorted {
        let mut groups = Vec::new();
        let mut i = 0;
        while i < partition.len() {
            let mut j = i + 1;
            while j < partition.len() && partition[j].0 == partition[i].0 {
                j += 1;
            }
            let values: Vec<V> = partition[i..j].iter().map(|(_, v)| v.clone()).collect();
            groups.push((&partition[i].0, values));
            i = j;
        }
        groups
    } else {
        // Unsorted reduce input: group via an index sort so every key still
        // reaches the reducer exactly once.
        let mut idx: Vec<usize> = (0..partition.len()).collect();
        idx.sort_by(|&a, &b| partition[a].0.cmp(&partition[b].0));
        let mut groups: Vec<(&K, Vec<V>)> = Vec::new();
        for &i in &idx {
            match groups.last_mut() {
                Some((k, values)) if *k == &partition[i].0 => values.push(partition[i].1.clone()),
                _ => groups.push((&partition[i].0, vec![partition[i].1.clone()])),
            }
        }
        groups
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::IdentityCombiner;

    struct SplitWords;
    impl Mapper for SplitWords {
        type InKey = usize;
        type InValue = String;
        type OutKey = String;
        type OutValue = u64;
        fn map(&self, _k: &usize, text: &String, out: &mut Emitter<String, u64>) {
            for w in text.split_whitespace() {
                out.emit(w.to_string(), 1);
            }
        }
    }

    struct SumCounts;
    impl Reducer for SumCounts {
        type Key = String;
        type InValue = u64;
        type OutKey = String;
        type OutValue = u64;
        fn reduce(&self, k: &String, vs: &[u64], out: &mut Emitter<String, u64>) {
            out.emit(k.clone(), vs.iter().sum());
        }
    }

    struct SumCombiner;
    impl Combiner for SumCombiner {
        type Key = String;
        type Value = u64;
        fn combine(&self, _k: &String, vs: &[u64]) -> Vec<u64> {
            vec![vs.iter().sum()]
        }
    }

    fn word_count_input() -> Vec<(usize, String)> {
        vec![
            (0, "the quick brown fox".to_string()),
            (1, "the lazy dog".to_string()),
            (2, "the quick dog".to_string()),
            (3, "fox fox fox".to_string()),
        ]
    }

    fn expected_counts() -> Vec<(String, u64)> {
        let mut v = vec![
            ("the".to_string(), 3),
            ("quick".to_string(), 2),
            ("brown".to_string(), 1),
            ("fox".to_string(), 4),
            ("lazy".to_string(), 1),
            ("dog".to_string(), 2),
        ];
        v.sort();
        v
    }

    #[test]
    fn word_count_without_combiner() {
        let job = Job::new(JobConfig::named("wc").with_threads(4));
        let result = job.run(&SplitWords, &SumCounts, word_count_input());
        let mut out = result.output;
        out.sort();
        assert_eq!(out, expected_counts());
        assert_eq!(result.metrics.map_input_records, 4);
        assert_eq!(result.metrics.map_output_records, 13);
        assert_eq!(result.metrics.shuffle_records, 13);
        assert_eq!(result.metrics.reduce_input_groups, 6);
        assert_eq!(result.metrics.reduce_output_records, 6);
    }

    #[test]
    fn word_count_with_combiner_shuffles_fewer_records() {
        let job = Job::new(
            JobConfig::named("wc-combine")
                .with_threads(2)
                .with_map_tasks(2)
                .with_reduce_tasks(3),
        );
        let result =
            job.run_with_combiner(&SplitWords, &SumCombiner, &SumCounts, word_count_input());
        let mut out = result.output;
        out.sort();
        assert_eq!(out, expected_counts());
        assert!(
            result.metrics.shuffle_records < result.metrics.map_output_records,
            "combiner should reduce shuffled records: {} vs {}",
            result.metrics.shuffle_records,
            result.metrics.map_output_records
        );
        assert!(result.metrics.combine_reduction() > 0.0);
    }

    #[test]
    fn result_is_independent_of_task_and_thread_counts() {
        let baseline = {
            let job = Job::new(JobConfig::named("wc").with_threads(1).with_map_tasks(1));
            let mut out = job.run(&SplitWords, &SumCounts, word_count_input()).output;
            out.sort();
            out
        };
        for threads in [1, 2, 4, 8] {
            for map_tasks in [1, 2, 3, 7] {
                for reduce_tasks in [1, 2, 5] {
                    let job = Job::new(
                        JobConfig::named("wc")
                            .with_threads(threads)
                            .with_map_tasks(map_tasks)
                            .with_reduce_tasks(reduce_tasks),
                    );
                    let mut out = job.run(&SplitWords, &SumCounts, word_count_input()).output;
                    out.sort();
                    assert_eq!(
                        out, baseline,
                        "threads={threads} map={map_tasks} reduce={reduce_tasks}"
                    );
                }
            }
        }
    }

    #[test]
    fn empty_input_produces_empty_output() {
        let job = Job::new(JobConfig::default());
        let result = job.run(&SplitWords, &SumCounts, Vec::new());
        assert!(result.output.is_empty());
        assert_eq!(result.metrics.map_input_records, 0);
        assert_eq!(result.metrics.reduce_output_records, 0);
    }

    #[test]
    fn reduce_input_is_sorted_by_key_within_partition() {
        // With a single reduce partition the whole output must be in key
        // order, mirroring Hadoop's sorted reducer input.
        let job = Job::new(
            JobConfig::named("sorted")
                .with_reduce_tasks(1)
                .with_threads(2),
        );
        let result = job.run(&SplitWords, &SumCounts, word_count_input());
        let keys: Vec<&String> = result.output.iter().map(|(k, _)| k).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn unsorted_reduce_input_still_groups_all_values() {
        let job = Job::new(
            JobConfig::named("unsorted")
                .with_sorted_reduce_input(false)
                .with_threads(3),
        );
        let mut out = job.run(&SplitWords, &SumCounts, word_count_input()).output;
        out.sort();
        assert_eq!(out, expected_counts());
    }

    #[test]
    fn identity_combiner_changes_nothing() {
        let job = Job::new(JobConfig::named("id"));
        let with_id = job.run_with_combiner(
            &SplitWords,
            &IdentityCombiner::new(),
            &SumCounts,
            word_count_input(),
        );
        assert_eq!(
            with_id.metrics.shuffle_records,
            with_id.metrics.map_output_records
        );
    }

    #[test]
    fn split_input_covers_all_records_without_duplication() {
        let input: Vec<(u32, u32)> = (0..103).map(|i| (i, i * 2)).collect();
        for tasks in [1, 2, 3, 7, 50, 103, 200] {
            let splits = split_input(input.clone(), tasks);
            let total: usize = splits.iter().map(|s| s.len()).sum();
            assert_eq!(total, 103, "tasks={tasks}");
            assert!(splits.len() <= tasks.max(1));
            let flat: Vec<(u32, u32)> = splits.into_iter().flatten().collect();
            assert_eq!(flat, input);
        }
    }

    #[test]
    fn group_by_key_sorted_and_unsorted_agree() {
        let data = vec![(2, 'a'), (1, 'b'), (2, 'c'), (3, 'd'), (1, 'e')];
        let mut sorted_data = data.clone();
        sorted_data.sort_by_key(|&(k, _)| k);
        let sorted_groups: Vec<(i32, Vec<char>)> = group_by_key(&sorted_data, true)
            .into_iter()
            .map(|(k, v)| (*k, v))
            .collect();
        let unsorted_groups: Vec<(i32, Vec<char>)> = group_by_key(&data, false)
            .into_iter()
            .map(|(k, v)| (*k, v))
            .collect();
        assert_eq!(sorted_groups.len(), 3);
        assert_eq!(sorted_groups.len(), unsorted_groups.len());
        for ((k1, mut v1), (k2, mut v2)) in sorted_groups.into_iter().zip(unsorted_groups) {
            v1.sort();
            v2.sort();
            assert_eq!(k1, k2);
            assert_eq!(v1, v2);
        }
    }
}
