//! The parallel job executor: map → combine-while-partitioning → merge →
//! reduce, with disk spilling under a memory budget.
//!
//! The executor is an in-process model of a Hadoop job, built around a
//! *streaming* shuffle:
//!
//! 1. **Map** — worker threads pull map tasks from a work-stealing
//!    [`TaskQueue`] (an atomic claim index over never-empty input ranges).
//!    Each task routes every emitted pair straight into a
//!    [`CombiningPartitionBuffer`], which applies the optional combiner
//!    *while partitioning*: when the bounded in-memory buffer overflows it
//!    combines in place, so a task's memory is bounded by its combined
//!    working set rather than its raw map output.
//! 2. **Spill** — under a [`JobConfig::memory_budget`] each task watches
//!    its buffer's byte estimate against its share of the budget.  When
//!    combining cannot keep the buffer under budget, the task drains it
//!    early: each partition bucket becomes a *sorted run* written to a
//!    spill file through the job's `SpillManager` (`spill_bytes` /
//!    `disk_runs` metrics), and the buffer starts over empty.
//! 3. **Run generation** — at task end every partition bucket is sorted
//!    once (at task granularity) and combined, yielding the task's final
//!    in-memory sorted run per partition.
//! 4. **Merge** — the shuffle k-way merges each reduce partition's runs
//!    (`O(n log k)`), streaming disk runs and in-memory runs through the
//!    same heap and applying the combiner once more across runs, so
//!    records that different tasks emitted for the same key collapse
//!    before they ever reach a reducer.
//! 5. **Reduce** — worker threads pull reduce partitions from a second
//!    task queue, group the (already sorted) partition by key and run the
//!    reducer.
//!
//! Determinism: task indices, not worker threads, decide every ordering
//! decision — runs merge in `(task, spill sequence)` order and key ties
//! break by run — so `JobResult.output` is byte-identical for any thread
//! count **and any memory budget**: a job that spilled every few records
//! produces exactly the bytes of the unlimited-memory run.  Record counts,
//! shuffled bytes, merged runs, spilled bytes and per-phase wall time are
//! recorded in [`JobMetrics`].

use std::mem;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use parking_lot::Mutex;
use smr_storage::{CompletedRun, RunReader, SpillManager};

use crate::config::JobConfig;
use crate::counters::{builtin, Counters};
use crate::metrics::JobMetrics;
use crate::partition::{CombiningPartitionBuffer, HashPartitioner, Partitioner};
use crate::shuffle::{merge_streams, merge_streams_combining, RunStream};
use crate::task_queue::TaskQueue;
use crate::types::{Combiner, Emitter, Mapper, Reducer};

/// Below this many run records the k-way merge runs inline on the calling
/// thread: spawning merge workers costs more than the merge itself.
const PARALLEL_MERGE_MIN_RECORDS: usize = 8 * 1024;

/// Caps how many run files a merge worker holds open at once.  A tiny
/// memory budget over a large input spills thousands of runs per
/// partition; opening them all simultaneously exhausts the process file
/// descriptor limit (`EMFILE`).  Partitions with more runs than this merge
/// hierarchically: batches of at most this many runs collapse into
/// in-memory intermediate runs until one final merge remains.
const MAX_MERGE_FAN_IN: usize = 64;

/// One sorted run of a reduce partition, tagged with its origin so the
/// merge can order runs deterministically whatever the completion order
/// was: `(task, seq)` sorts spilled chunks of a task before the task's
/// final in-memory run, in emission order.
pub(crate) struct TaggedRun<K, V> {
    pub(crate) task: usize,
    pub(crate) seq: usize,
    pub(crate) source: RunSource<K, V>,
}

pub(crate) enum RunSource<K, V> {
    Memory(Vec<(K, V)>),
    Disk(CompletedRun),
}

impl<K, V> RunSource<K, V> {
    fn len(&self) -> usize {
        match self {
            RunSource::Memory(run) => run.len(),
            RunSource::Disk(run) => run.records as usize,
        }
    }
}

/// Every sorted run of a job, bucketed by reduce partition.
pub(crate) type TaggedRuns<K, V> = Vec<Mutex<Vec<TaggedRun<K, V>>>>;

/// The output of a completed job.
#[derive(Debug, Clone)]
pub struct JobResult<K, V> {
    /// All pairs emitted by the reducers, in partition order.  Records
    /// within a partition appear in key order (the shuffle always sorts).
    pub output: Vec<(K, V)>,
    /// Engine-level metrics (record counts, timings).
    pub metrics: JobMetrics,
    /// The counter set shared with the tasks (includes built-in counters
    /// and any user counters bumped from map/reduce code).
    pub counters: Counters,
}

/// A configured MapReduce job, ready to run user functions over an input.
#[derive(Debug, Clone, Default)]
pub struct Job {
    config: JobConfig,
}

impl Job {
    /// Creates a job with the given configuration.
    pub fn new(config: JobConfig) -> Self {
        Job { config }
    }

    /// The job configuration.
    pub fn config(&self) -> &JobConfig {
        &self.config
    }

    /// Runs the job with no combiner and hash partitioning.
    pub fn run<M, R>(
        &self,
        mapper: &M,
        reducer: &R,
        input: Vec<(M::InKey, M::InValue)>,
    ) -> JobResult<R::OutKey, R::OutValue>
    where
        M: Mapper,
        R: Reducer<Key = M::OutKey, InValue = M::OutValue>,
    {
        self.run_full(
            mapper,
            None::<&crate::types::IdentityCombiner<M::OutKey, M::OutValue>>,
            reducer,
            &HashPartitioner::new(),
            input,
            Counters::new(),
        )
    }

    /// Runs the job with a map-side combiner and hash partitioning.
    pub fn run_with_combiner<M, C, R>(
        &self,
        mapper: &M,
        combiner: &C,
        reducer: &R,
        input: Vec<(M::InKey, M::InValue)>,
    ) -> JobResult<R::OutKey, R::OutValue>
    where
        M: Mapper,
        C: Combiner<Key = M::OutKey, Value = M::OutValue>,
        R: Reducer<Key = M::OutKey, InValue = M::OutValue>,
    {
        self.run_full(
            mapper,
            Some(combiner),
            reducer,
            &HashPartitioner::new(),
            input,
            Counters::new(),
        )
    }

    /// Runs the job with every knob exposed: optional combiner, custom
    /// partitioner and an externally supplied counter set (so iterative
    /// algorithms can accumulate user counters across rounds).
    pub fn run_full<M, C, R, P>(
        &self,
        mapper: &M,
        combiner: Option<&C>,
        reducer: &R,
        partitioner: &P,
        input: Vec<(M::InKey, M::InValue)>,
        counters: Counters,
    ) -> JobResult<R::OutKey, R::OutValue>
    where
        M: Mapper,
        C: Combiner<Key = M::OutKey, Value = M::OutValue>,
        R: Reducer<Key = M::OutKey, InValue = M::OutValue>,
        P: Partitioner<M::OutKey>,
    {
        let num_reduce_tasks = self.config.effective_reduce_tasks();

        let mut metrics = JobMetrics {
            job_name: self.config.name.clone(),
            reduce_tasks: num_reduce_tasks,
            ..JobMetrics::default()
        };
        counters.add(builtin::MAP_INPUT_RECORDS, input.len() as u64);
        metrics.map_input_records = input.len() as u64;

        // An identity combiner is a no-op by contract: drop it so the job
        // skips the combine machinery (no per-group `values.to_vec()`, no
        // combining-buffer spills) instead of paying for nothing.
        let combiner = combiner.filter(|c| !c.is_identity());

        // A job opted into process sharding delegates to the installed
        // multi-process runtime (when a sharded session is active): this
        // process then plays coordinator or worker.  See `sharded.rs`.
        if self.config.process_shards.is_some() {
            if let Some(runtime) = crate::process_shard::current_runtime() {
                return self.run_process_sharded(
                    runtime,
                    mapper,
                    combiner,
                    reducer,
                    partitioner,
                    input,
                    counters,
                    metrics,
                );
            }
        }

        // Map + shuffle: one sorted vector of records per reduce partition.
        let (runs, spill) = self.map_phase(
            mapper,
            combiner,
            partitioner,
            &input,
            &counters,
            &mut metrics,
            None,
        );
        let partitions = self.merge_phase(runs, combiner, &counters, &mut metrics);
        // The merge consumed every disk run: dropping the spill manager
        // here removes its temp directory before the reduce starts.
        drop(spill);

        let output = self.reduce_phase(&partitions, reducer, &counters, &mut metrics);
        finish_metrics(&counters, &mut metrics);

        JobResult {
            output,
            metrics,
            counters,
        }
    }

    /// The streaming map phase: map tasks emit per-partition sorted runs
    /// (combining while partitioning, spilling to disk under a memory
    /// budget).  When `shard` is given, only map tasks whose index falls
    /// inside that range are executed — the task queue, the task index
    /// space and every per-task decision (spill points, run sequence
    /// numbers) are identical to an unsharded run, which is what makes
    /// runs produced by different processes merge to byte-identical
    /// output.  Returns the runs and the spill manager whose temp files
    /// back the disk runs (the caller must keep it alive until the runs
    /// are consumed).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn map_phase<M, C, P>(
        &self,
        mapper: &M,
        combiner: Option<&C>,
        partitioner: &P,
        input: &[(M::InKey, M::InValue)],
        counters: &Counters,
        metrics: &mut JobMetrics,
        shard: Option<std::ops::Range<usize>>,
    ) -> (TaggedRuns<M::OutKey, M::OutValue>, Option<SpillManager>)
    where
        M: Mapper,
        C: Combiner<Key = M::OutKey, Value = M::OutValue>,
        P: Partitioner<M::OutKey>,
    {
        let num_threads = self.config.effective_threads();
        let num_reduce_tasks = self.config.effective_reduce_tasks();
        let combine_buffer_records = self.config.combine_buffer_records;

        // The spill manager exists only under a memory budget; its temp
        // directory is created lazily on the first spill and removed when
        // it drops (after the merge — or the shard export — has consumed
        // every disk run, so no temp files survive the job either way).
        let spill_manager = self
            .config
            .memory_budget
            .map(|budget| SpillManager::new(budget, num_threads, self.config.spill_dir.clone()));
        let spill = spill_manager.as_ref();

        // Map: pull tasks from the queue, emit sorted runs per
        // (task, partition) — several per task when the task spills.
        let map_start = Instant::now();
        let queue = TaskQueue::split(input.len(), self.config.effective_map_tasks(input.len()));
        metrics.map_tasks = queue.num_tasks();

        let runs: TaggedRuns<M::OutKey, M::OutValue> = (0..num_reduce_tasks)
            .map(|_| Mutex::new(Vec::new()))
            .collect();
        let spills = AtomicU64::new(0);
        let queue_ref = &queue;
        let runs_ref = &runs;
        let spills_ref = &spills;
        let shard_ref = &shard;

        crossbeam::thread::scope(|scope| {
            for _ in 0..num_threads.min(queue.num_tasks()) {
                scope.spawn(|_| {
                    let mut emitter = Emitter::new();
                    let mut map_output = 0u64;
                    let mut combine_output = 0u64;
                    while let Some(task) = queue_ref.claim() {
                        // A sharded worker claims from the *global* task
                        // queue but executes only its own slice: skipping
                        // is cheap and keeps task indices identical to an
                        // unsharded run.
                        if let Some(range) = shard_ref {
                            if !range.contains(&task.index) {
                                continue;
                            }
                        }
                        let mut buffer =
                            CombiningPartitionBuffer::new(num_reduce_tasks, combine_buffer_records);
                        // Spilled chunks of this task get sequence numbers
                        // 0, 1, …; the final in-memory run sorts after all
                        // of them (usize::MAX), preserving emission order.
                        let mut seq = 0usize;
                        for (key, value) in &input[task.range.clone()] {
                            mapper.map(key, value, &mut emitter);
                            emitter.drain_each(|out_key, out_value| {
                                map_output += 1;
                                let p = partitioner.partition(&out_key, num_reduce_tasks);
                                buffer.push(p, out_key, out_value, combiner);
                            });
                            if let Some(manager) = spill {
                                if buffer.approx_bytes() > manager.task_budget() {
                                    // Last resort before disk: combine.  The
                                    // combine must free real headroom (half
                                    // the budget) to stave off the spill —
                                    // merely squeaking back under budget
                                    // would re-trigger a full-buffer combine
                                    // every few pushes, the thrash the
                                    // watermark back-off exists to prevent.
                                    if let Some(combiner) = combiner {
                                        buffer.combine_now(combiner);
                                    }
                                    if buffer.approx_bytes() > manager.task_budget() / 2 {
                                        combine_output += spill_buffer(
                                            &mut buffer,
                                            manager,
                                            runs_ref,
                                            task.index,
                                            seq,
                                        );
                                        seq += 1;
                                    }
                                }
                            }
                        }
                        spills_ref.fetch_add(buffer.spills(), Ordering::Relaxed);
                        for (p, run) in buffer.into_sorted_runs(combiner).into_iter().enumerate() {
                            if !run.is_empty() {
                                combine_output += run.len() as u64;
                                runs_ref[p].lock().push(TaggedRun {
                                    task: task.index,
                                    seq: usize::MAX,
                                    source: RunSource::Memory(run),
                                });
                            }
                        }
                    }
                    counters.add(builtin::MAP_OUTPUT_RECORDS, map_output);
                    counters.add(builtin::COMBINE_OUTPUT_RECORDS, combine_output);
                });
            }
        })
        .expect("map worker thread panicked");
        counters.add(builtin::COMBINE_SPILLS, spills.into_inner());
        if let Some(manager) = spill {
            counters.add(builtin::SPILL_BYTES, manager.spilled_bytes());
            counters.add(builtin::DISK_RUNS, manager.disk_runs());
        }
        metrics.timings.map = map_start.elapsed();

        (runs, spill_manager)
    }

    /// The shuffle: k-way merge each partition's runs (parallel over
    /// partitions), streaming disk and memory runs uniformly and
    /// combining equal keys that straddle runs.  Small jobs merge
    /// inline: spawning workers costs more than merging a few thousand
    /// records, and the merged result is identical either way (no
    /// ordering decision depends on the execution site).
    ///
    /// Runs may come from the local map phase or — in a sharded session —
    /// from run files that worker processes shipped back: the
    /// `(task, seq)` sort makes the merge indifferent to where a run was
    /// produced.
    pub(crate) fn merge_phase<K, V, C>(
        &self,
        runs: TaggedRuns<K, V>,
        combiner: Option<&C>,
        counters: &Counters,
        metrics: &mut JobMetrics,
    ) -> Vec<Vec<(K, V)>>
    where
        K: crate::types::Key,
        V: crate::types::Value,
        C: Combiner<Key = K, Value = V>,
    {
        let num_threads = self.config.effective_threads();
        let num_reduce_tasks = runs.len();
        let runs_ref = &runs;

        let shuffle_start = Instant::now();
        let record_bytes = mem::size_of::<(K, V)>() as u64;
        let merge_queue = TaskQueue::unit(num_reduce_tasks);
        type MergedPartitions<K, V> = Vec<Mutex<Vec<(K, V)>>>;
        let merged: MergedPartitions<K, V> = (0..num_reduce_tasks)
            .map(|_| Mutex::new(Vec::new()))
            .collect();
        let merge_queue_ref = &merge_queue;
        let merged_ref = &merged;

        let merge_worker = || {
            let mut shuffled = 0u64;
            let mut runs_merged = 0u64;
            while let Some(task) = merge_queue_ref.claim() {
                let mut partition_runs = mem::take(&mut *runs_ref[task.index].lock());
                partition_runs.sort_unstable_by_key(|run| (run.task, run.seq));
                runs_merged += partition_runs.len() as u64;
                let sources: Vec<RunSource<K, V>> =
                    partition_runs.into_iter().map(|run| run.source).collect();
                let combined = merge_sources(sources, MAX_MERGE_FAN_IN, combiner);
                shuffled += combined.len() as u64;
                *merged_ref[task.index].lock() = combined;
            }
            counters.add(builtin::SHUFFLE_RECORDS, shuffled);
            counters.add(builtin::SHUFFLE_BYTES, shuffled * record_bytes);
            counters.add(builtin::MERGE_RUNS, runs_merged);
        };
        let run_records: usize = runs
            .iter()
            .map(|partition| {
                partition
                    .lock()
                    .iter()
                    .map(|run| run.source.len())
                    .sum::<usize>()
            })
            .sum();
        let merge_threads = if run_records < PARALLEL_MERGE_MIN_RECORDS {
            1
        } else {
            num_threads.min(num_reduce_tasks)
        };
        if merge_threads <= 1 {
            merge_worker();
        } else {
            let merge_worker_ref = &merge_worker;
            crossbeam::thread::scope(|scope| {
                for _ in 0..merge_threads {
                    scope.spawn(move |_| merge_worker_ref());
                }
            })
            .expect("merge worker thread panicked");
        }
        metrics.timings.shuffle = shuffle_start.elapsed();

        merged.into_iter().map(Mutex::into_inner).collect()
    }

    /// The reduce phase: workers pull sorted partitions from a task
    /// queue, group by key and run the reducer; output is concatenated in
    /// partition order.
    pub(crate) fn reduce_phase<K, V, R>(
        &self,
        partitions: &[Vec<(K, V)>],
        reducer: &R,
        counters: &Counters,
        metrics: &mut JobMetrics,
    ) -> Vec<(R::OutKey, R::OutValue)>
    where
        K: crate::types::Key,
        V: crate::types::Value,
        R: Reducer<Key = K, InValue = V>,
    {
        let num_threads = self.config.effective_threads();
        let num_reduce_tasks = partitions.len();

        let reduce_start = Instant::now();
        type PartitionResults<K, V> = Mutex<Vec<(usize, Vec<(K, V)>)>>;
        let partition_results: PartitionResults<R::OutKey, R::OutValue> =
            Mutex::new(Vec::with_capacity(num_reduce_tasks));
        let reduce_queue = TaskQueue::unit(num_reduce_tasks);
        let reduce_queue_ref = &reduce_queue;

        crossbeam::thread::scope(|scope| {
            for _ in 0..num_threads.min(num_reduce_tasks) {
                scope.spawn(|_| {
                    while let Some(task) = reduce_queue_ref.claim() {
                        let partition = &partitions[task.index];
                        let mut emitter = Emitter::new();
                        let mut groups = 0u64;
                        for (key, values) in group_by_key(partition) {
                            reducer.reduce(key, &values, &mut emitter);
                            groups += 1;
                        }
                        counters.add(builtin::REDUCE_INPUT_GROUPS, groups);
                        let out = emitter.into_pairs();
                        counters.add(builtin::REDUCE_OUTPUT_RECORDS, out.len() as u64);
                        partition_results.lock().push((task.index, out));
                    }
                });
            }
        })
        .expect("reduce worker thread panicked");

        let mut partition_results = partition_results.into_inner();
        partition_results.sort_unstable_by_key(|(index, _)| *index);
        let output: Vec<(R::OutKey, R::OutValue)> = partition_results
            .into_iter()
            .flat_map(|(_, out)| out)
            .collect();
        metrics.timings.reduce = reduce_start.elapsed();
        output
    }
}

/// Copies the end-of-job counter totals into the metrics struct — the
/// epilogue every execution path (local, sharded coordinator, sharded
/// worker) shares.
pub(crate) fn finish_metrics(counters: &Counters, metrics: &mut JobMetrics) {
    metrics.map_output_records = counters.get(builtin::MAP_OUTPUT_RECORDS);
    metrics.shuffle_records = counters.get(builtin::SHUFFLE_RECORDS);
    metrics.shuffle_bytes = counters.get(builtin::SHUFFLE_BYTES);
    metrics.merge_runs = counters.get(builtin::MERGE_RUNS);
    metrics.spill_bytes = counters.get(builtin::SPILL_BYTES);
    metrics.disk_runs = counters.get(builtin::DISK_RUNS);
    metrics.reduce_input_groups = counters.get(builtin::REDUCE_INPUT_GROUPS);
    metrics.reduce_output_records = counters.get(builtin::REDUCE_OUTPUT_RECORDS);
    metrics.user_counters = counters.snapshot();
}

/// Merges a reduce partition's runs (already in `(task, seq)` order) into
/// one sorted, combined vector, holding at most `fan_in` run files open at
/// a time.
///
/// When the partition has more runs than `fan_in`, batches of `fan_in`
/// consecutive runs collapse into in-memory intermediate runs, pass after
/// pass, until a single final merge remains — `⌈log_fan_in(runs)⌉` passes,
/// in practice two.  Intermediate passes merge **without** combining: a
/// pure merge keeps equal keys in exactly the run order of a flat merge,
/// so the one combining pass at the end folds values in the same order
/// however many passes ran, and the output stays byte-identical to the
/// unbounded merge without assuming anything about the combiner beyond the
/// engine's usual contract.
fn merge_sources<K, V, C>(
    sources: Vec<RunSource<K, V>>,
    fan_in: usize,
    combiner: Option<&C>,
) -> Vec<(K, V)>
where
    K: crate::types::Key,
    V: crate::types::Value,
    C: Combiner<Key = K, Value = V>,
{
    fn open<K, V>(source: RunSource<K, V>) -> RunStream<K, V>
    where
        K: crate::types::Key,
        V: crate::types::Value,
    {
        match source {
            RunSource::Memory(records) => RunStream::Memory(records.into_iter()),
            RunSource::Disk(run) => RunStream::Disk(
                RunReader::open(&run.path)
                    .unwrap_or_else(|e| panic!("spilled run unreadable: {e}")),
            ),
        }
    }

    let fan_in = fan_in.max(2);
    let mut sources = sources;
    while sources.len() > fan_in {
        let mut next = Vec::with_capacity(sources.len().div_ceil(fan_in));
        let mut batch = Vec::with_capacity(fan_in);
        for source in sources {
            batch.push(open(source));
            if batch.len() == fan_in {
                next.push(RunSource::Memory(merge_streams(mem::take(&mut batch))));
            }
        }
        if !batch.is_empty() {
            next.push(RunSource::Memory(merge_streams(batch)));
        }
        sources = next;
    }
    let streams: Vec<RunStream<K, V>> = sources.into_iter().map(open).collect();
    match combiner {
        Some(combiner) => merge_streams_combining(streams, combiner),
        None => merge_streams(streams),
    }
}

/// Drains `buffer` into sorted runs and writes every non-empty one to a
/// spill file, registering the disk runs under `(task, seq)`.  Returns the
/// number of records spilled (they leave the map task here, so they count
/// as combine output).
fn spill_buffer<K, V>(
    buffer: &mut CombiningPartitionBuffer<K, V>,
    manager: &SpillManager,
    runs: &[Mutex<Vec<TaggedRun<K, V>>>],
    task: usize,
    seq: usize,
) -> u64
where
    K: crate::types::Key,
    V: crate::types::Value,
{
    // The caller just combined (when a combiner exists), so the buckets
    // only need sorting — pass no combiner to avoid a second pass.
    let mut spilled = 0u64;
    for (p, run) in buffer
        .take_sorted_runs(None::<&crate::types::IdentityCombiner<K, V>>)
        .into_iter()
        .enumerate()
    {
        if run.is_empty() {
            continue;
        }
        spilled += run.len() as u64;
        let completed = manager
            .write_run(&run)
            .unwrap_or_else(|e| panic!("failed to spill run: {e}"));
        runs[p].lock().push(TaggedRun {
            task,
            seq,
            source: RunSource::Disk(completed),
        });
    }
    spilled
}

/// Iterates over `(key, values)` groups of a sorted partition: equal keys
/// are adjacent (the shuffle always sorts), so grouping is a single pass.
fn group_by_key<K: Ord + Clone, V: Clone>(partition: &[(K, V)]) -> Vec<(&K, Vec<V>)> {
    let mut groups = Vec::new();
    let mut i = 0;
    while i < partition.len() {
        let mut j = i + 1;
        while j < partition.len() && partition[j].0 == partition[i].0 {
            j += 1;
        }
        let values: Vec<V> = partition[i..j].iter().map(|(_, v)| v.clone()).collect();
        groups.push((&partition[i].0, values));
        i = j;
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::IdentityCombiner;

    struct SplitWords;
    impl Mapper for SplitWords {
        type InKey = usize;
        type InValue = String;
        type OutKey = String;
        type OutValue = u64;
        fn map(&self, _k: &usize, text: &String, out: &mut Emitter<String, u64>) {
            for w in text.split_whitespace() {
                out.emit(w.to_string(), 1);
            }
        }
    }

    struct SumCounts;
    impl Reducer for SumCounts {
        type Key = String;
        type InValue = u64;
        type OutKey = String;
        type OutValue = u64;
        fn reduce(&self, k: &String, vs: &[u64], out: &mut Emitter<String, u64>) {
            out.emit(k.clone(), vs.iter().sum());
        }
    }

    struct SumCombiner;
    impl Combiner for SumCombiner {
        type Key = String;
        type Value = u64;
        fn combine(&self, _k: &String, vs: &[u64]) -> Vec<u64> {
            vec![vs.iter().sum()]
        }
    }

    fn word_count_input() -> Vec<(usize, String)> {
        vec![
            (0, "the quick brown fox".to_string()),
            (1, "the lazy dog".to_string()),
            (2, "the quick dog".to_string()),
            (3, "fox fox fox".to_string()),
        ]
    }

    fn expected_counts() -> Vec<(String, u64)> {
        let mut v = vec![
            ("the".to_string(), 3),
            ("quick".to_string(), 2),
            ("brown".to_string(), 1),
            ("fox".to_string(), 4),
            ("lazy".to_string(), 1),
            ("dog".to_string(), 2),
        ];
        v.sort();
        v
    }

    #[test]
    fn word_count_without_combiner() {
        let job = Job::new(JobConfig::named("wc").with_threads(4));
        let result = job.run(&SplitWords, &SumCounts, word_count_input());
        let mut out = result.output;
        out.sort();
        assert_eq!(out, expected_counts());
        assert_eq!(result.metrics.map_input_records, 4);
        assert_eq!(result.metrics.map_output_records, 13);
        assert_eq!(result.metrics.shuffle_records, 13);
        assert_eq!(result.metrics.reduce_input_groups, 6);
        assert_eq!(result.metrics.reduce_output_records, 6);
        assert!(result.metrics.shuffle_bytes > 0);
    }

    #[test]
    fn word_count_with_combiner_shuffles_fewer_records() {
        let job = Job::new(
            JobConfig::named("wc-combine")
                .with_threads(2)
                .with_map_tasks(2)
                .with_reduce_tasks(3),
        );
        let result =
            job.run_with_combiner(&SplitWords, &SumCombiner, &SumCounts, word_count_input());
        let mut out = result.output;
        out.sort();
        assert_eq!(out, expected_counts());
        assert!(
            result.metrics.shuffle_records < result.metrics.map_output_records,
            "combiner should reduce shuffled records: {} vs {}",
            result.metrics.shuffle_records,
            result.metrics.map_output_records
        );
        assert!(result.metrics.combine_reduction() > 0.0);
    }

    #[test]
    fn merge_side_combine_collapses_cross_task_duplicates() {
        // With several map tasks, the same word is emitted (task-combined)
        // by more than one task; the merge-side combine collapses those, so
        // the shuffle ends with exactly one record per distinct key.
        let config = JobConfig::named("wc-merge-combine")
            .with_threads(2)
            .with_map_tasks(4)
            .with_reduce_tasks(2);
        let result = Job::new(config).run_with_combiner(
            &SplitWords,
            &SumCombiner,
            &SumCounts,
            word_count_input(),
        );
        let mut out = result.output;
        out.sort();
        assert_eq!(out, expected_counts());
        assert!(result.metrics.merge_runs > 0);
        assert_eq!(
            result.metrics.shuffle_records, 6,
            "exactly one record per distinct key must cross the shuffle"
        );
    }

    #[test]
    fn tiny_combine_buffer_spills_and_stays_correct() {
        let job = Job::new(
            JobConfig::named("wc-spill")
                .with_threads(2)
                .with_map_tasks(2)
                .with_combine_buffer_records(2),
        );
        let result =
            job.run_with_combiner(&SplitWords, &SumCombiner, &SumCounts, word_count_input());
        let mut out = result.output;
        out.sort();
        assert_eq!(out, expected_counts());
        assert!(
            result.counters.get(builtin::COMBINE_SPILLS) > 0,
            "a 2-record buffer over 13 map outputs must spill"
        );
    }

    #[test]
    fn result_is_independent_of_task_and_thread_counts() {
        let baseline = {
            let job = Job::new(JobConfig::named("wc").with_threads(1).with_map_tasks(1));
            let mut out = job.run(&SplitWords, &SumCounts, word_count_input()).output;
            out.sort();
            out
        };
        for threads in [1, 2, 4, 8] {
            for map_tasks in [1, 2, 3, 7] {
                for reduce_tasks in [1, 2, 5] {
                    let job = Job::new(
                        JobConfig::named("wc")
                            .with_threads(threads)
                            .with_map_tasks(map_tasks)
                            .with_reduce_tasks(reduce_tasks),
                    );
                    let mut out = job.run(&SplitWords, &SumCounts, word_count_input()).output;
                    out.sort();
                    assert_eq!(
                        out, baseline,
                        "threads={threads} map={map_tasks} reduce={reduce_tasks}"
                    );
                }
            }
        }
    }

    #[test]
    fn empty_input_produces_empty_output_and_schedules_no_map_task() {
        let job = Job::new(JobConfig::default());
        let result = job.run(&SplitWords, &SumCounts, Vec::new());
        assert!(result.output.is_empty());
        assert_eq!(result.metrics.map_input_records, 0);
        assert_eq!(result.metrics.reduce_output_records, 0);
        assert_eq!(result.metrics.map_tasks, 0, "no empty map task");
    }

    #[test]
    fn more_map_tasks_than_records_schedules_one_task_per_record() {
        let job = Job::new(JobConfig::named("wc").with_map_tasks(64));
        let result = job.run(&SplitWords, &SumCounts, word_count_input());
        assert_eq!(result.metrics.map_tasks, 4);
    }

    #[test]
    fn reduce_input_is_sorted_by_key_within_partition() {
        // With a single reduce partition the whole output must be in key
        // order, mirroring Hadoop's sorted reducer input.
        let job = Job::new(
            JobConfig::named("sorted")
                .with_reduce_tasks(1)
                .with_threads(2),
        );
        let result = job.run(&SplitWords, &SumCounts, word_count_input());
        let keys: Vec<&String> = result.output.iter().map(|(k, _)| k).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn identity_combiner_changes_nothing() {
        let job = Job::new(JobConfig::named("id"));
        let with_id = job.run_with_combiner(
            &SplitWords,
            &IdentityCombiner::new(),
            &SumCounts,
            word_count_input(),
        );
        assert_eq!(
            with_id.metrics.shuffle_records,
            with_id.metrics.map_output_records
        );
    }

    #[test]
    fn identity_combiner_skips_the_combine_pass_entirely() {
        // A 1-record combining buffer would spill on every push if the
        // identity combiner were actually run; the executor must detect
        // `is_identity()` and behave exactly like a combiner-less job.
        let config = JobConfig::named("id-skip")
            .with_threads(2)
            .with_map_tasks(3)
            .with_combine_buffer_records(1);
        let with_id = Job::new(config.clone()).run_with_combiner(
            &SplitWords,
            &IdentityCombiner::new(),
            &SumCounts,
            word_count_input(),
        );
        assert_eq!(
            with_id.counters.get(builtin::COMBINE_SPILLS),
            0,
            "identity combiner must never trigger a combining-buffer spill"
        );
        let without = Job::new(config).run(&SplitWords, &SumCounts, word_count_input());
        assert_eq!(with_id.output, without.output);
        assert_eq!(
            with_id.metrics.shuffle_records,
            without.metrics.shuffle_records
        );
    }

    // ----------------------------------------------------------------------
    // Memory budget / disk spilling
    // ----------------------------------------------------------------------

    /// Runs word count (with and without combiner) under `budget` and
    /// returns the result.
    fn run_budgeted(budget: Option<u64>, use_combiner: bool) -> JobResult<String, u64> {
        let job = Job::new(
            JobConfig::named("wc-budget")
                .with_threads(2)
                .with_map_tasks(3)
                .with_reduce_tasks(2)
                .with_memory_budget(budget),
        );
        if use_combiner {
            job.run_with_combiner(&SplitWords, &SumCombiner, &SumCounts, word_count_input())
        } else {
            job.run(&SplitWords, &SumCounts, word_count_input())
        }
    }

    #[test]
    fn tiny_memory_budget_spills_to_disk_and_output_is_byte_identical() {
        for use_combiner in [false, true] {
            let unlimited = run_budgeted(None, use_combiner);
            assert_eq!(unlimited.metrics.disk_runs, 0);
            assert_eq!(unlimited.metrics.spill_bytes, 0);

            // A budget far below one record per worker forces a spill on
            // (nearly) every push.
            let spilled = run_budgeted(Some(2), use_combiner);
            assert_eq!(
                spilled.output, unlimited.output,
                "combiner={use_combiner}: spilled output must be byte-identical"
            );
            assert!(spilled.metrics.disk_runs > 0, "combiner={use_combiner}");
            assert!(spilled.metrics.spill_bytes > 0, "combiner={use_combiner}");
            assert_eq!(
                spilled.metrics.shuffle_records,
                unlimited.metrics.shuffle_records
            );
        }
    }

    #[test]
    fn steady_state_near_the_budget_spills_instead_of_thrashing() {
        // A combined working set of 48 distinct (u32, u64) keys is ~768
        // bytes: between budget/2 (512) and the 1024-byte budget.  A
        // combine pass gets back under budget but can never free real
        // headroom, so without the budget/2 spill rule the engine would
        // re-sort and re-combine the whole buffer on (nearly) every push.
        struct KeyMod;
        impl Mapper for KeyMod {
            type InKey = u32;
            type InValue = u64;
            type OutKey = u32;
            type OutValue = u64;
            fn map(&self, k: &u32, v: &u64, out: &mut Emitter<u32, u64>) {
                out.emit(k % 48, *v);
            }
        }
        struct SumU32;
        impl Combiner for SumU32 {
            type Key = u32;
            type Value = u64;
            fn combine(&self, _k: &u32, vs: &[u64]) -> Vec<u64> {
                vec![vs.iter().sum()]
            }
        }
        struct SumRed;
        impl Reducer for SumRed {
            type Key = u32;
            type InValue = u64;
            type OutKey = u32;
            type OutValue = u64;
            fn reduce(&self, k: &u32, vs: &[u64], out: &mut Emitter<u32, u64>) {
                out.emit(*k, vs.iter().sum());
            }
        }
        let input: Vec<(u32, u64)> = (0..4000u32).map(|i| (i, 1u64)).collect();
        let job = Job::new(
            JobConfig::named("near-budget")
                .with_threads(1)
                .with_map_tasks(1)
                .with_reduce_tasks(1)
                .with_memory_budget(Some(1024)),
        );
        let result = job.run_with_combiner(&KeyMod, &SumU32, &SumRed, input);
        assert_eq!(result.output.len(), 48);
        assert_eq!(result.output.iter().map(|(_, v)| v).sum::<u64>(), 4000);
        assert!(result.metrics.disk_runs > 0, "{:?}", result.metrics);
        let combine_passes = result.counters.get(builtin::COMBINE_SPILLS);
        assert!(
            combine_passes < result.metrics.map_output_records / 16,
            "near-budget steady state must not combine per push: \
             {combine_passes} passes for {} records",
            result.metrics.map_output_records
        );
    }

    #[test]
    fn generous_budget_never_touches_disk() {
        let result = run_budgeted(Some(64 * 1024 * 1024), true);
        assert_eq!(result.metrics.disk_runs, 0);
        assert_eq!(result.metrics.spill_bytes, 0);
    }

    #[test]
    fn spill_directory_is_left_clean() {
        let base =
            std::env::temp_dir().join(format!("smr-executor-spill-test-{}", std::process::id()));
        std::fs::create_dir_all(&base).unwrap();
        let job = Job::new(
            JobConfig::named("wc-clean")
                .with_threads(2)
                .with_memory_budget(Some(2))
                .with_spill_dir(&base),
        );
        let result = job.run(&SplitWords, &SumCounts, word_count_input());
        assert!(result.metrics.disk_runs > 0, "the job must actually spill");
        assert_eq!(
            std::fs::read_dir(&base).unwrap().count(),
            0,
            "no temp files may outlive the job"
        );
        std::fs::remove_dir_all(&base).unwrap();
    }

    /// Sorted runs with overlapping keys: run `r` holds keys
    /// `r, r+1, ..., r+9`, value `r` — so every key appears in several
    /// runs and value order across runs is observable.
    fn overlapping_runs(count: usize) -> Vec<RunSource<u64, u64>> {
        (0..count as u64)
            .map(|r| RunSource::Memory((r..r + 10).map(|k| (k, r)).collect()))
            .collect()
    }

    #[test]
    fn bounded_fan_in_merge_is_byte_identical_to_flat_merge() {
        let flat = merge_sources(
            overlapping_runs(9),
            usize::MAX,
            None::<&IdentityCombiner<u64, u64>>,
        );
        for fan_in in [2, 3, 4, 8] {
            let bounded = merge_sources(
                overlapping_runs(9),
                fan_in,
                None::<&IdentityCombiner<u64, u64>>,
            );
            assert_eq!(bounded, flat, "fan-in {fan_in} diverged from flat merge");
        }
        // Equal keys must still come out in run order, not batch order.
        let values_for_key_5: Vec<u64> = flat
            .iter()
            .filter(|(k, _)| *k == 5)
            .map(|(_, v)| *v)
            .collect();
        assert_eq!(values_for_key_5, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn bounded_fan_in_merge_combines_once_at_the_final_pass() {
        struct SumU64;
        impl Combiner for SumU64 {
            type Key = u64;
            type Value = u64;
            fn combine(&self, _k: &u64, vs: &[u64]) -> Vec<u64> {
                vec![vs.iter().sum()]
            }
        }
        let flat = merge_sources(overlapping_runs(11), usize::MAX, Some(&SumU64));
        let bounded = merge_sources(overlapping_runs(11), 2, Some(&SumU64));
        assert_eq!(bounded, flat);
        // Each key's combined value is the sum over every run containing it.
        let (_, total) = *flat.iter().find(|(k, _)| *k == 10).unwrap();
        assert_eq!(total, (1..=10).sum::<u64>());
    }

    #[test]
    fn bounded_fan_in_merge_streams_disk_runs_in_batches() {
        let manager = SpillManager::new(1024, 1, None);
        let sources: Vec<RunSource<u64, u64>> = (0..9u64)
            .map(|r| {
                let records: Vec<(u64, u64)> = (r..r + 10).map(|k| (k, r)).collect();
                RunSource::Disk(manager.write_run(&records).unwrap())
            })
            .collect();
        let merged = merge_sources(sources, 2, None::<&IdentityCombiner<u64, u64>>);
        let flat = merge_sources(
            overlapping_runs(9),
            usize::MAX,
            None::<&IdentityCombiner<u64, u64>>,
        );
        assert_eq!(merged, flat);
    }

    #[test]
    fn group_by_key_groups_adjacent_equal_keys() {
        let mut data = vec![(2, 'a'), (1, 'b'), (2, 'c'), (3, 'd'), (1, 'e')];
        data.sort_by_key(|&(k, _)| k);
        let groups: Vec<(i32, Vec<char>)> = group_by_key(&data)
            .into_iter()
            .map(|(k, v)| (*k, v))
            .collect();
        assert_eq!(
            groups,
            vec![(1, vec!['b', 'e']), (2, vec!['a', 'c']), (3, vec!['d'])]
        );
        assert!(group_by_key::<i32, char>(&[]).is_empty());
    }
}
