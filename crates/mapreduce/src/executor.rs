//! The parallel job executor: map → combine-while-partitioning → merge →
//! reduce.
//!
//! The executor is an in-process model of a Hadoop job, built around a
//! *streaming* shuffle:
//!
//! 1. **Map** — worker threads pull map tasks from a work-stealing
//!    [`TaskQueue`] (an atomic claim index over never-empty input ranges).
//!    Each task routes every emitted pair straight into a
//!    [`CombiningPartitionBuffer`], which applies the optional combiner
//!    *while partitioning*: when the bounded in-memory buffer overflows it
//!    combines in place, so a task's memory is bounded by its combined
//!    working set rather than its raw map output.
//! 2. **Run generation** — at task end every partition bucket is sorted
//!    once (at task granularity) and combined, yielding one *sorted run*
//!    per `(task, partition)` pair.
//! 3. **Merge** — the shuffle k-way merges each reduce partition's runs
//!    (`O(n log k)` instead of the legacy concat + full re-sort's
//!    `O(n log n)`), applying the combiner once more across runs, so
//!    records that different tasks emitted for the same key collapse
//!    before they ever reach a reducer.
//! 4. **Reduce** — worker threads pull reduce partitions from a second
//!    task queue, group the (already sorted) partition by key and run the
//!    reducer.
//!
//! Determinism: task indices, not worker threads, decide every ordering
//! decision (runs merge in task order; key ties break by run), so
//! `JobResult.output` is byte-identical for any thread count — and
//! byte-identical to the legacy path, which is kept for one release behind
//! [`ShuffleMode::LegacySort`] so the `shuffle` bench experiment can A/B
//! the two.  Record counts, shuffled bytes, merged runs and per-phase wall
//! time are recorded in [`JobMetrics`].

use std::mem;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use parking_lot::Mutex;

use crate::config::{JobConfig, ShuffleMode};
use crate::counters::{builtin, Counters};
use crate::metrics::JobMetrics;
use crate::partition::{CombiningPartitionBuffer, HashPartitioner, Partitioner};
use crate::shuffle::{combine_sorted_groups, merge_runs, merge_runs_combining};
use crate::task_queue::TaskQueue;
use crate::types::{Combiner, Emitter, Mapper, Reducer};

/// Below this many run records the k-way merge runs inline on the calling
/// thread: spawning merge workers costs more than the merge itself.
const PARALLEL_MERGE_MIN_RECORDS: usize = 8 * 1024;

/// The output of a completed job.
#[derive(Debug, Clone)]
pub struct JobResult<K, V> {
    /// All pairs emitted by the reducers, in partition order.  Records
    /// within a partition appear in key order (the streaming shuffle
    /// always sorts; the legacy path sorts when `sort_reduce_input` is
    /// set).
    pub output: Vec<(K, V)>,
    /// Engine-level metrics (record counts, timings).
    pub metrics: JobMetrics,
    /// The counter set shared with the tasks (includes built-in counters
    /// and any user counters bumped from map/reduce code).
    pub counters: Counters,
}

/// A configured MapReduce job, ready to run user functions over an input.
#[derive(Debug, Clone, Default)]
pub struct Job {
    config: JobConfig,
}

impl Job {
    /// Creates a job with the given configuration.
    pub fn new(config: JobConfig) -> Self {
        Job { config }
    }

    /// The job configuration.
    pub fn config(&self) -> &JobConfig {
        &self.config
    }

    /// Runs the job with no combiner and hash partitioning.
    pub fn run<M, R>(
        &self,
        mapper: &M,
        reducer: &R,
        input: Vec<(M::InKey, M::InValue)>,
    ) -> JobResult<R::OutKey, R::OutValue>
    where
        M: Mapper,
        R: Reducer<Key = M::OutKey, InValue = M::OutValue>,
    {
        self.run_full(
            mapper,
            None::<&crate::types::IdentityCombiner<M::OutKey, M::OutValue>>,
            reducer,
            &HashPartitioner::new(),
            input,
            Counters::new(),
        )
    }

    /// Runs the job with a map-side combiner and hash partitioning.
    pub fn run_with_combiner<M, C, R>(
        &self,
        mapper: &M,
        combiner: &C,
        reducer: &R,
        input: Vec<(M::InKey, M::InValue)>,
    ) -> JobResult<R::OutKey, R::OutValue>
    where
        M: Mapper,
        C: Combiner<Key = M::OutKey, Value = M::OutValue>,
        R: Reducer<Key = M::OutKey, InValue = M::OutValue>,
    {
        self.run_full(
            mapper,
            Some(combiner),
            reducer,
            &HashPartitioner::new(),
            input,
            Counters::new(),
        )
    }

    /// Runs the job with every knob exposed: optional combiner, custom
    /// partitioner and an externally supplied counter set (so iterative
    /// algorithms can accumulate user counters across rounds).
    pub fn run_full<M, C, R, P>(
        &self,
        mapper: &M,
        combiner: Option<&C>,
        reducer: &R,
        partitioner: &P,
        input: Vec<(M::InKey, M::InValue)>,
        counters: Counters,
    ) -> JobResult<R::OutKey, R::OutValue>
    where
        M: Mapper,
        C: Combiner<Key = M::OutKey, Value = M::OutValue>,
        R: Reducer<Key = M::OutKey, InValue = M::OutValue>,
        P: Partitioner<M::OutKey>,
    {
        let num_threads = self.config.effective_threads();
        let num_reduce_tasks = self.config.effective_reduce_tasks();

        let mut metrics = JobMetrics {
            job_name: self.config.name.clone(),
            reduce_tasks: num_reduce_tasks,
            ..JobMetrics::default()
        };
        counters.add(builtin::MAP_INPUT_RECORDS, input.len() as u64);
        metrics.map_input_records = input.len() as u64;

        // An identity combiner is a no-op by contract: drop it so the job
        // skips the combine machinery (no per-group `values.to_vec()`, no
        // combining-buffer spills) instead of paying for nothing.
        let combiner = combiner.filter(|c| !c.is_identity());

        // Map + shuffle: both modes end with one vector of records per
        // reduce partition.
        #[allow(deprecated)] // LegacySort stays runnable until removal
        let (partitions, sorted) = match self.config.shuffle {
            ShuffleMode::Streaming => (
                self.streaming_map_and_merge(
                    mapper,
                    combiner,
                    partitioner,
                    &input,
                    &counters,
                    &mut metrics,
                ),
                true,
            ),
            ShuffleMode::LegacySort => (
                self.legacy_map_and_sort(
                    mapper,
                    combiner,
                    partitioner,
                    &input,
                    &counters,
                    &mut metrics,
                ),
                self.config.sort_reduce_input,
            ),
        };

        // ------------------------------------------------------------------
        // Reduce phase (workers pull partitions from a task queue).
        // ------------------------------------------------------------------
        let reduce_start = Instant::now();
        type PartitionResults<K, V> = Mutex<Vec<(usize, Vec<(K, V)>)>>;
        let partition_results: PartitionResults<R::OutKey, R::OutValue> =
            Mutex::new(Vec::with_capacity(num_reduce_tasks));
        let reduce_queue = TaskQueue::unit(num_reduce_tasks);
        let partitions_ref = &partitions;
        let reduce_queue_ref = &reduce_queue;
        let counters_ref = &counters;

        crossbeam::thread::scope(|scope| {
            for _ in 0..num_threads.min(num_reduce_tasks) {
                scope.spawn(|_| {
                    while let Some(task) = reduce_queue_ref.claim() {
                        let partition = &partitions_ref[task.index];
                        let mut emitter = Emitter::new();
                        let mut groups = 0u64;
                        for (key, values) in group_by_key(partition, sorted) {
                            reducer.reduce(key, &values, &mut emitter);
                            groups += 1;
                        }
                        counters_ref.add(builtin::REDUCE_INPUT_GROUPS, groups);
                        let out = emitter.into_pairs();
                        counters_ref.add(builtin::REDUCE_OUTPUT_RECORDS, out.len() as u64);
                        partition_results.lock().push((task.index, out));
                    }
                });
            }
        })
        .expect("reduce worker thread panicked");

        let mut partition_results = partition_results.into_inner();
        partition_results.sort_unstable_by_key(|(index, _)| *index);
        let output: Vec<(R::OutKey, R::OutValue)> = partition_results
            .into_iter()
            .flat_map(|(_, out)| out)
            .collect();
        metrics.timings.reduce = reduce_start.elapsed();

        metrics.map_output_records = counters.get(builtin::MAP_OUTPUT_RECORDS);
        metrics.shuffle_records = counters.get(builtin::SHUFFLE_RECORDS);
        metrics.shuffle_bytes = counters.get(builtin::SHUFFLE_BYTES);
        metrics.merge_runs = counters.get(builtin::MERGE_RUNS);
        metrics.reduce_input_groups = counters.get(builtin::REDUCE_INPUT_GROUPS);
        metrics.reduce_output_records = counters.get(builtin::REDUCE_OUTPUT_RECORDS);
        metrics.user_counters = counters.snapshot();

        JobResult {
            output,
            metrics,
            counters,
        }
    }

    /// The streaming path: map tasks emit per-partition sorted runs
    /// (combining while partitioning); the shuffle k-way merges each
    /// partition's runs and combines across them.
    fn streaming_map_and_merge<M, C, P>(
        &self,
        mapper: &M,
        combiner: Option<&C>,
        partitioner: &P,
        input: &[(M::InKey, M::InValue)],
        counters: &Counters,
        metrics: &mut JobMetrics,
    ) -> Vec<Vec<(M::OutKey, M::OutValue)>>
    where
        M: Mapper,
        C: Combiner<Key = M::OutKey, Value = M::OutValue>,
        P: Partitioner<M::OutKey>,
    {
        let num_threads = self.config.effective_threads();
        let num_reduce_tasks = self.config.effective_reduce_tasks();
        let combine_buffer_records = self.config.combine_buffer_records;

        // ------------------------------------------------------------------
        // Map: pull tasks from the queue, emit one sorted run per
        // (task, partition).
        // ------------------------------------------------------------------
        let map_start = Instant::now();
        let queue = TaskQueue::split(input.len(), self.config.effective_map_tasks(input.len()));
        metrics.map_tasks = queue.num_tasks();

        // Runs are tagged with their task index so the merge can order
        // them deterministically, whatever the completion order was.
        type TaggedRuns<K, V> = Vec<Mutex<Vec<(usize, Vec<(K, V)>)>>>;
        let runs: TaggedRuns<M::OutKey, M::OutValue> = (0..num_reduce_tasks)
            .map(|_| Mutex::new(Vec::new()))
            .collect();
        let spills = AtomicU64::new(0);
        let queue_ref = &queue;
        let runs_ref = &runs;
        let spills_ref = &spills;

        crossbeam::thread::scope(|scope| {
            for _ in 0..num_threads.min(queue.num_tasks()) {
                scope.spawn(|_| {
                    let mut emitter = Emitter::new();
                    let mut map_output = 0u64;
                    let mut combine_output = 0u64;
                    while let Some(task) = queue_ref.claim() {
                        let mut buffer =
                            CombiningPartitionBuffer::new(num_reduce_tasks, combine_buffer_records);
                        for (key, value) in &input[task.range.clone()] {
                            mapper.map(key, value, &mut emitter);
                            emitter.drain_each(|out_key, out_value| {
                                map_output += 1;
                                let p = partitioner.partition(&out_key, num_reduce_tasks);
                                buffer.push(p, out_key, out_value, combiner);
                            });
                        }
                        spills_ref.fetch_add(buffer.spills(), Ordering::Relaxed);
                        for (p, run) in buffer.into_sorted_runs(combiner).into_iter().enumerate() {
                            if !run.is_empty() {
                                combine_output += run.len() as u64;
                                runs_ref[p].lock().push((task.index, run));
                            }
                        }
                    }
                    counters.add(builtin::MAP_OUTPUT_RECORDS, map_output);
                    counters.add(builtin::COMBINE_OUTPUT_RECORDS, combine_output);
                });
            }
        })
        .expect("map worker thread panicked");
        counters.add(builtin::COMBINE_SPILLS, spills.into_inner());
        metrics.timings.map = map_start.elapsed();

        // ------------------------------------------------------------------
        // Shuffle: k-way merge each partition's runs (parallel over
        // partitions), combining equal keys that straddle runs.  Small
        // jobs merge inline: spawning workers costs more than merging a
        // few thousand records, and the merged result is identical either
        // way (no ordering decision depends on the execution site).
        // ------------------------------------------------------------------
        let shuffle_start = Instant::now();
        let record_bytes = mem::size_of::<(M::OutKey, M::OutValue)>() as u64;
        let merge_queue = TaskQueue::unit(num_reduce_tasks);
        type MergedPartitions<K, V> = Vec<Mutex<Vec<(K, V)>>>;
        let merged: MergedPartitions<M::OutKey, M::OutValue> = (0..num_reduce_tasks)
            .map(|_| Mutex::new(Vec::new()))
            .collect();
        let merge_queue_ref = &merge_queue;
        let merged_ref = &merged;

        let merge_worker = || {
            let mut shuffled = 0u64;
            let mut runs_merged = 0u64;
            while let Some(task) = merge_queue_ref.claim() {
                let mut partition_runs = mem::take(&mut *runs_ref[task.index].lock());
                partition_runs.sort_unstable_by_key(|(task_index, _)| *task_index);
                runs_merged += partition_runs.len() as u64;
                let partition_runs: Vec<_> =
                    partition_runs.into_iter().map(|(_, run)| run).collect();
                let combined = match combiner {
                    Some(combiner) => merge_runs_combining(partition_runs, combiner),
                    None => merge_runs(partition_runs),
                };
                shuffled += combined.len() as u64;
                *merged_ref[task.index].lock() = combined;
            }
            counters.add(builtin::SHUFFLE_RECORDS, shuffled);
            counters.add(builtin::SHUFFLE_BYTES, shuffled * record_bytes);
            counters.add(builtin::MERGE_RUNS, runs_merged);
        };
        let run_records: usize = runs
            .iter()
            .map(|partition| {
                partition
                    .lock()
                    .iter()
                    .map(|(_, run)| run.len())
                    .sum::<usize>()
            })
            .sum();
        let merge_threads = if run_records < PARALLEL_MERGE_MIN_RECORDS {
            1
        } else {
            num_threads.min(num_reduce_tasks)
        };
        if merge_threads <= 1 {
            merge_worker();
        } else {
            let merge_worker_ref = &merge_worker;
            crossbeam::thread::scope(|scope| {
                for _ in 0..merge_threads {
                    scope.spawn(move |_| merge_worker_ref());
                }
            })
            .expect("merge worker thread panicked");
        }
        metrics.timings.shuffle = shuffle_start.elapsed();

        merged.into_iter().map(Mutex::into_inner).collect()
    }

    /// The legacy path: map tasks bucket their (task-combined) output per
    /// partition; the shuffle concatenates every task's bucket in task
    /// order and re-sorts whole partitions.
    fn legacy_map_and_sort<M, C, P>(
        &self,
        mapper: &M,
        combiner: Option<&C>,
        partitioner: &P,
        input: &[(M::InKey, M::InValue)],
        counters: &Counters,
        metrics: &mut JobMetrics,
    ) -> Vec<Vec<(M::OutKey, M::OutValue)>>
    where
        M: Mapper,
        C: Combiner<Key = M::OutKey, Value = M::OutValue>,
        P: Partitioner<M::OutKey>,
    {
        let num_threads = self.config.effective_threads();
        let num_reduce_tasks = self.config.effective_reduce_tasks();

        let map_start = Instant::now();
        let queue = TaskQueue::split(input.len(), self.config.effective_map_tasks(input.len()));
        metrics.map_tasks = queue.num_tasks();

        type TaskOutputs<K, V> = Mutex<Vec<(usize, Vec<Vec<(K, V)>>)>>;
        let task_outputs: TaskOutputs<M::OutKey, M::OutValue> =
            Mutex::new(Vec::with_capacity(queue.num_tasks()));
        let queue_ref = &queue;

        crossbeam::thread::scope(|scope| {
            for _ in 0..num_threads.min(queue.num_tasks()) {
                scope.spawn(|_| {
                    let mut emitter = Emitter::new();
                    while let Some(task) = queue_ref.claim() {
                        for (key, value) in &input[task.range.clone()] {
                            mapper.map(key, value, &mut emitter);
                        }
                        let emitted = emitter.drain();
                        counters.add(builtin::MAP_OUTPUT_RECORDS, emitted.len() as u64);
                        let combined = match combiner {
                            Some(combiner) => combine_task_output(combiner, emitted),
                            None => emitted,
                        };
                        counters.add(builtin::COMBINE_OUTPUT_RECORDS, combined.len() as u64);
                        let mut buckets: Vec<Vec<(M::OutKey, M::OutValue)>> =
                            (0..num_reduce_tasks).map(|_| Vec::new()).collect();
                        for (key, value) in combined {
                            let p = partitioner.partition(&key, num_reduce_tasks);
                            buckets[p].push((key, value));
                        }
                        task_outputs.lock().push((task.index, buckets));
                    }
                });
            }
        })
        .expect("map worker thread panicked");
        metrics.timings.map = map_start.elapsed();

        let shuffle_start = Instant::now();
        let mut task_outputs = task_outputs.into_inner();
        // Concatenate in task-index order (not completion order) so equal
        // keys interleave deterministically under the stable sort below.
        task_outputs.sort_unstable_by_key(|(task_index, _)| *task_index);
        let mut partitions: Vec<Vec<(M::OutKey, M::OutValue)>> =
            (0..num_reduce_tasks).map(|_| Vec::new()).collect();
        for (_, buckets) in task_outputs {
            for (p, bucket) in buckets.into_iter().enumerate() {
                partitions[p].extend(bucket);
            }
        }
        let shuffled: u64 = partitions.iter().map(|p| p.len() as u64).sum();
        counters.add(builtin::SHUFFLE_RECORDS, shuffled);
        counters.add(
            builtin::SHUFFLE_BYTES,
            shuffled * mem::size_of::<(M::OutKey, M::OutValue)>() as u64,
        );
        if self.config.sort_reduce_input {
            for partition in &mut partitions {
                partition.sort_by(|a, b| a.0.cmp(&b.0));
            }
        }
        metrics.timings.shuffle = shuffle_start.elapsed();
        partitions
    }
}

/// Applies a combiner to one map task's output: sorts the pairs by key
/// (stable) and replaces each group's values by the combiner's output.
fn combine_task_output<C: Combiner>(
    combiner: &C,
    mut pairs: Vec<(C::Key, C::Value)>,
) -> Vec<(C::Key, C::Value)> {
    pairs.sort_by(|a, b| a.0.cmp(&b.0));
    combine_sorted_groups(pairs, combiner)
}

/// Iterates over `(key, values)` groups of a partition.
///
/// When the partition is sorted, equal keys are adjacent and the grouping is
/// a single pass; otherwise a full scan per distinct key would be wrong, so
/// we sort a copy of the indices instead.
fn group_by_key<K: Ord + Clone, V: Clone>(partition: &[(K, V)], sorted: bool) -> Vec<(&K, Vec<V>)> {
    if partition.is_empty() {
        return Vec::new();
    }
    if sorted {
        let mut groups = Vec::new();
        let mut i = 0;
        while i < partition.len() {
            let mut j = i + 1;
            while j < partition.len() && partition[j].0 == partition[i].0 {
                j += 1;
            }
            let values: Vec<V> = partition[i..j].iter().map(|(_, v)| v.clone()).collect();
            groups.push((&partition[i].0, values));
            i = j;
        }
        groups
    } else {
        // Unsorted reduce input: group via an index sort so every key still
        // reaches the reducer exactly once.
        let mut idx: Vec<usize> = (0..partition.len()).collect();
        idx.sort_by(|&a, &b| partition[a].0.cmp(&partition[b].0));
        let mut groups: Vec<(&K, Vec<V>)> = Vec::new();
        for &i in &idx {
            match groups.last_mut() {
                Some((k, values)) if *k == &partition[i].0 => values.push(partition[i].1.clone()),
                _ => groups.push((&partition[i].0, vec![partition[i].1.clone()])),
            }
        }
        groups
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::IdentityCombiner;

    struct SplitWords;
    impl Mapper for SplitWords {
        type InKey = usize;
        type InValue = String;
        type OutKey = String;
        type OutValue = u64;
        fn map(&self, _k: &usize, text: &String, out: &mut Emitter<String, u64>) {
            for w in text.split_whitespace() {
                out.emit(w.to_string(), 1);
            }
        }
    }

    struct SumCounts;
    impl Reducer for SumCounts {
        type Key = String;
        type InValue = u64;
        type OutKey = String;
        type OutValue = u64;
        fn reduce(&self, k: &String, vs: &[u64], out: &mut Emitter<String, u64>) {
            out.emit(k.clone(), vs.iter().sum());
        }
    }

    struct SumCombiner;
    impl Combiner for SumCombiner {
        type Key = String;
        type Value = u64;
        fn combine(&self, _k: &String, vs: &[u64]) -> Vec<u64> {
            vec![vs.iter().sum()]
        }
    }

    fn word_count_input() -> Vec<(usize, String)> {
        vec![
            (0, "the quick brown fox".to_string()),
            (1, "the lazy dog".to_string()),
            (2, "the quick dog".to_string()),
            (3, "fox fox fox".to_string()),
        ]
    }

    fn expected_counts() -> Vec<(String, u64)> {
        let mut v = vec![
            ("the".to_string(), 3),
            ("quick".to_string(), 2),
            ("brown".to_string(), 1),
            ("fox".to_string(), 4),
            ("lazy".to_string(), 1),
            ("dog".to_string(), 2),
        ];
        v.sort();
        v
    }

    #[test]
    fn word_count_without_combiner() {
        let job = Job::new(JobConfig::named("wc").with_threads(4));
        let result = job.run(&SplitWords, &SumCounts, word_count_input());
        let mut out = result.output;
        out.sort();
        assert_eq!(out, expected_counts());
        assert_eq!(result.metrics.map_input_records, 4);
        assert_eq!(result.metrics.map_output_records, 13);
        assert_eq!(result.metrics.shuffle_records, 13);
        assert_eq!(result.metrics.reduce_input_groups, 6);
        assert_eq!(result.metrics.reduce_output_records, 6);
        assert!(result.metrics.shuffle_bytes > 0);
    }

    #[test]
    fn word_count_with_combiner_shuffles_fewer_records() {
        let job = Job::new(
            JobConfig::named("wc-combine")
                .with_threads(2)
                .with_map_tasks(2)
                .with_reduce_tasks(3),
        );
        let result =
            job.run_with_combiner(&SplitWords, &SumCombiner, &SumCounts, word_count_input());
        let mut out = result.output;
        out.sort();
        assert_eq!(out, expected_counts());
        assert!(
            result.metrics.shuffle_records < result.metrics.map_output_records,
            "combiner should reduce shuffled records: {} vs {}",
            result.metrics.shuffle_records,
            result.metrics.map_output_records
        );
        assert!(result.metrics.combine_reduction() > 0.0);
    }

    #[test]
    #[allow(deprecated)]
    fn merge_side_combine_beats_legacy_task_side_combine() {
        // With several map tasks, the same word is emitted (task-combined)
        // by more than one task; the streaming merge combines across runs
        // so strictly fewer records reach the reducers.
        let config = JobConfig::named("wc-merge-combine")
            .with_threads(2)
            .with_map_tasks(4)
            .with_reduce_tasks(2);
        let legacy = Job::new(config.clone().with_shuffle_mode(ShuffleMode::LegacySort))
            .run_with_combiner(&SplitWords, &SumCombiner, &SumCounts, word_count_input());
        let streaming = Job::new(config).run_with_combiner(
            &SplitWords,
            &SumCombiner,
            &SumCounts,
            word_count_input(),
        );
        assert_eq!(streaming.output, legacy.output);
        assert!(
            streaming.metrics.shuffle_records < legacy.metrics.shuffle_records,
            "streaming {} vs legacy {}",
            streaming.metrics.shuffle_records,
            legacy.metrics.shuffle_records
        );
        assert!(streaming.metrics.merge_runs > 0);
        assert_eq!(legacy.metrics.merge_runs, 0);
    }

    #[test]
    #[allow(deprecated)]
    fn streaming_and_legacy_produce_identical_output() {
        for (threads, map_tasks, reduce_tasks) in [(1, 1, 1), (2, 3, 2), (4, 7, 5), (8, 13, 3)] {
            let config = JobConfig::named("ab")
                .with_threads(threads)
                .with_map_tasks(map_tasks)
                .with_reduce_tasks(reduce_tasks);
            let legacy = Job::new(config.clone().with_shuffle_mode(ShuffleMode::LegacySort)).run(
                &SplitWords,
                &SumCounts,
                word_count_input(),
            );
            let streaming = Job::new(config).run(&SplitWords, &SumCounts, word_count_input());
            assert_eq!(
                streaming.output, legacy.output,
                "threads={threads} map={map_tasks} reduce={reduce_tasks}"
            );
            assert_eq!(
                streaming.metrics.shuffle_records,
                legacy.metrics.shuffle_records
            );
        }
    }

    #[test]
    fn tiny_combine_buffer_spills_and_stays_correct() {
        let job = Job::new(
            JobConfig::named("wc-spill")
                .with_threads(2)
                .with_map_tasks(2)
                .with_combine_buffer_records(2),
        );
        let result =
            job.run_with_combiner(&SplitWords, &SumCombiner, &SumCounts, word_count_input());
        let mut out = result.output;
        out.sort();
        assert_eq!(out, expected_counts());
        assert!(
            result.counters.get(builtin::COMBINE_SPILLS) > 0,
            "a 2-record buffer over 13 map outputs must spill"
        );
    }

    #[test]
    fn result_is_independent_of_task_and_thread_counts() {
        let baseline = {
            let job = Job::new(JobConfig::named("wc").with_threads(1).with_map_tasks(1));
            let mut out = job.run(&SplitWords, &SumCounts, word_count_input()).output;
            out.sort();
            out
        };
        for threads in [1, 2, 4, 8] {
            for map_tasks in [1, 2, 3, 7] {
                for reduce_tasks in [1, 2, 5] {
                    let job = Job::new(
                        JobConfig::named("wc")
                            .with_threads(threads)
                            .with_map_tasks(map_tasks)
                            .with_reduce_tasks(reduce_tasks),
                    );
                    let mut out = job.run(&SplitWords, &SumCounts, word_count_input()).output;
                    out.sort();
                    assert_eq!(
                        out, baseline,
                        "threads={threads} map={map_tasks} reduce={reduce_tasks}"
                    );
                }
            }
        }
    }

    #[test]
    #[allow(deprecated)]
    fn empty_input_produces_empty_output_and_schedules_no_map_task() {
        for mode in [ShuffleMode::Streaming, ShuffleMode::LegacySort] {
            let job = Job::new(JobConfig::default().with_shuffle_mode(mode));
            let result = job.run(&SplitWords, &SumCounts, Vec::new());
            assert!(result.output.is_empty());
            assert_eq!(result.metrics.map_input_records, 0);
            assert_eq!(result.metrics.reduce_output_records, 0);
            assert_eq!(
                result.metrics.map_tasks, 0,
                "no empty map task for {mode:?}"
            );
        }
    }

    #[test]
    fn more_map_tasks_than_records_schedules_one_task_per_record() {
        let job = Job::new(JobConfig::named("wc").with_map_tasks(64));
        let result = job.run(&SplitWords, &SumCounts, word_count_input());
        assert_eq!(result.metrics.map_tasks, 4);
    }

    #[test]
    fn reduce_input_is_sorted_by_key_within_partition() {
        // With a single reduce partition the whole output must be in key
        // order, mirroring Hadoop's sorted reducer input.
        let job = Job::new(
            JobConfig::named("sorted")
                .with_reduce_tasks(1)
                .with_threads(2),
        );
        let result = job.run(&SplitWords, &SumCounts, word_count_input());
        let keys: Vec<&String> = result.output.iter().map(|(k, _)| k).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
    }

    #[test]
    #[allow(deprecated)]
    fn unsorted_reduce_input_still_groups_all_values() {
        for mode in [ShuffleMode::Streaming, ShuffleMode::LegacySort] {
            let job = Job::new(
                JobConfig::named("unsorted")
                    .with_sorted_reduce_input(false)
                    .with_shuffle_mode(mode)
                    .with_threads(3),
            );
            let mut out = job.run(&SplitWords, &SumCounts, word_count_input()).output;
            out.sort();
            assert_eq!(out, expected_counts(), "{mode:?}");
        }
    }

    #[test]
    fn identity_combiner_changes_nothing() {
        let job = Job::new(JobConfig::named("id"));
        let with_id = job.run_with_combiner(
            &SplitWords,
            &IdentityCombiner::new(),
            &SumCounts,
            word_count_input(),
        );
        assert_eq!(
            with_id.metrics.shuffle_records,
            with_id.metrics.map_output_records
        );
    }

    #[test]
    fn identity_combiner_skips_the_combine_pass_entirely() {
        // A 1-record combining buffer would spill on every push if the
        // identity combiner were actually run; the executor must detect
        // `is_identity()` and behave exactly like a combiner-less job.
        let config = JobConfig::named("id-skip")
            .with_threads(2)
            .with_map_tasks(3)
            .with_combine_buffer_records(1);
        let with_id = Job::new(config.clone()).run_with_combiner(
            &SplitWords,
            &IdentityCombiner::new(),
            &SumCounts,
            word_count_input(),
        );
        assert_eq!(
            with_id.counters.get(builtin::COMBINE_SPILLS),
            0,
            "identity combiner must never trigger a combining-buffer spill"
        );
        let without = Job::new(config).run(&SplitWords, &SumCounts, word_count_input());
        assert_eq!(with_id.output, without.output);
        assert_eq!(
            with_id.metrics.shuffle_records,
            without.metrics.shuffle_records
        );
    }

    #[test]
    fn group_by_key_sorted_and_unsorted_agree() {
        let data = vec![(2, 'a'), (1, 'b'), (2, 'c'), (3, 'd'), (1, 'e')];
        let mut sorted_data = data.clone();
        sorted_data.sort_by_key(|&(k, _)| k);
        let sorted_groups: Vec<(i32, Vec<char>)> = group_by_key(&sorted_data, true)
            .into_iter()
            .map(|(k, v)| (*k, v))
            .collect();
        let unsorted_groups: Vec<(i32, Vec<char>)> = group_by_key(&data, false)
            .into_iter()
            .map(|(k, v)| (*k, v))
            .collect();
        assert_eq!(sorted_groups.len(), 3);
        assert_eq!(sorted_groups.len(), unsorted_groups.len());
        for ((k1, mut v1), (k2, mut v2)) in sorted_groups.into_iter().zip(unsorted_groups) {
            v1.sort();
            v2.sort();
            assert_eq!(k1, k2);
            assert_eq!(v1, v2);
        }
    }
}
