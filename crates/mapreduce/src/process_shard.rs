//! The seam between the in-process engine and a multi-process sharded
//! session.
//!
//! `smr_mapreduce` cannot depend on the process-management crate
//! (`smr_distrib` depends on *it*), so the executor talks to the sharded
//! world through the [`ProcessShardRuntime`] trait: `smr_distrib`
//! implements it twice — once for the coordinator (spawn workers, collect
//! and validate shard manifests, supervise retries) and once for a worker
//! (commit the shard's manifest, honour the fault-injection hook) — and
//! installs the active implementation process-globally for the duration
//! of a sharded session.
//!
//! [`Job::run_full`][crate::Job::run_full] consults the installed runtime
//! only when the job's [`JobConfig::process_shards`] is set; with no
//! runtime installed the flag is inert and the job runs in process, so
//! plain `Job` users never pay for this seam.
//!
//! The division of labour keeps all *typed* work in the executor: the
//! runtime never sees a key or value, it deals in directories, shard
//! manifests and process lifecycles.  See `docs/distrib.md` for the whole
//! protocol.

use std::path::PathBuf;
use std::sync::{Arc, RwLock};
use std::time::Duration;

use smr_storage::ShardManifest;

use crate::config::JobConfig;

/// Which side of a sharded session this process is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardRole {
    /// The session owner: spawns workers, merges their runs, reduces and
    /// publishes each job's output.
    Coordinator,
    /// A spawned worker: maps its shard of each job and ships runs back.
    Worker {
        /// The shard this worker owns, `0..num_shards`.
        shard: usize,
        /// The worker's spawn attempt, starting at 1.
        attempt: u64,
    },
}

/// Everything the executor needs to know about one sharded job: where its
/// files live and which side of the protocol to play.
#[derive(Debug, Clone)]
pub struct ShardJob {
    /// Sequence number of the job within the session (both sides count
    /// sharded jobs identically — the deterministic replay guarantees
    /// the numbering agrees; the manifest cross-check enforces it).
    pub seq: u64,
    /// Total worker processes in the session.
    pub num_shards: usize,
    /// This process's role.
    pub role: ShardRole,
    /// The job's directory inside the session directory.
    pub job_dir: PathBuf,
    /// Where the coordinator publishes the job's reduced output as a run
    /// file (the run header's pending-count commit protocol makes the
    /// publish atomic for pollers).
    pub output_path: PathBuf,
    /// Worker only: the attempt-scoped directory run files and the
    /// manifest go into (fresh per spawn attempt, so a retried shard
    /// never collides with its predecessor's debris).
    pub attempt_dir: Option<PathBuf>,
}

/// The facts the coordinator knows about a job independently of any
/// worker, used to reject a manifest from a diverged replay: a manifest
/// that decodes and checksums correctly but disagrees on any of these
/// fields means the worker executed a *different* job than the
/// coordinator — a protocol bug, not a transient fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardJobCheck {
    /// The job's configured name.
    pub job_name: String,
    /// Input records of the whole job.
    pub input_records: u64,
    /// Map tasks the whole job splits into.
    pub num_map_tasks: u64,
}

/// The runtime a sharded session installs; see the module docs.
pub trait ProcessShardRuntime: Send + Sync + std::fmt::Debug {
    /// Called by every participant at the start of each sharded job;
    /// advances the session's job sequence and resolves the job's
    /// directories.
    fn begin_job(&self, config: &JobConfig) -> ShardJob;

    /// Coordinator: block until every shard has committed a valid
    /// manifest for this job, spawning/respawning and retrying workers as
    /// needed, and return the manifests in shard order.
    ///
    /// # Panics
    /// Panics when a shard exhausts its retry budget or a validated
    /// manifest contradicts `expect` (lockstep divergence).  Panics if
    /// called on a worker.
    fn collect_manifests(&self, job: &ShardJob, expect: &ShardJobCheck) -> Vec<ShardManifest>;

    /// Worker: atomically commit this shard's manifest for the job.  The
    /// fault-injection hook lives here (a worker told to fail writes a
    /// corrupt manifest and aborts instead).
    ///
    /// # Panics
    /// Panics if called on the coordinator.
    fn commit_manifest(&self, job: &ShardJob, manifest: &ShardManifest);

    /// How often a worker polls for the published job output.
    fn output_poll_interval(&self) -> Duration {
        Duration::from_millis(2)
    }

    /// How long a worker waits for the published job output before
    /// treating itself as orphaned and exiting.
    fn output_timeout(&self) -> Duration {
        Duration::from_secs(180)
    }
}

static RUNTIME: RwLock<Option<Arc<dyn ProcessShardRuntime>>> = RwLock::new(None);

/// Installs `runtime` as the process-global shard runtime for the
/// duration of a session.
///
/// # Panics
/// Panics if a runtime is already installed: sessions must not nest (the
/// session layer serializes them).
pub fn install_runtime(runtime: Arc<dyn ProcessShardRuntime>) {
    let mut slot = RUNTIME.write().expect("shard runtime lock");
    assert!(
        slot.is_none(),
        "a process-shard runtime is already installed; sharded sessions cannot nest"
    );
    *slot = Some(runtime);
}

/// Removes the installed runtime at session end.
pub fn clear_runtime() {
    *RUNTIME.write().expect("shard runtime lock") = None;
}

/// The currently installed runtime, if a sharded session is active.
pub fn current_runtime() -> Option<Arc<dyn ProcessShardRuntime>> {
    RUNTIME.read().expect("shard runtime lock").clone()
}

/// The contiguous slice of the job's `num_tasks` map tasks that `shard`
/// (of `num_shards`) owns.  Shards partition the **global task index
/// space**, so the union over shards is every task exactly once and the
/// `(task, seq)`-ordered merge reassembles precisely the runs the
/// in-process engine would have produced — byte identity by construction.
/// When there are fewer tasks than shards the tail shards get empty
/// slices.
pub fn shard_task_range(
    shard: usize,
    num_shards: usize,
    num_tasks: usize,
) -> std::ops::Range<usize> {
    assert!(num_shards > 0, "a session needs at least one shard");
    assert!(shard < num_shards, "shard {shard} of {num_shards}");
    let lo = shard * num_tasks / num_shards;
    let hi = (shard + 1) * num_tasks / num_shards;
    lo..hi
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_ranges_partition_the_task_space() {
        for num_tasks in [0usize, 1, 2, 3, 7, 8, 64, 100] {
            for num_shards in [1usize, 2, 3, 4, 7] {
                let mut covered = Vec::new();
                for shard in 0..num_shards {
                    covered.extend(shard_task_range(shard, num_shards, num_tasks));
                }
                let expected: Vec<usize> = (0..num_tasks).collect();
                assert_eq!(
                    covered, expected,
                    "tasks={num_tasks} shards={num_shards}: ranges must tile 0..tasks in order"
                );
            }
        }
    }

    #[test]
    fn more_shards_than_tasks_leaves_tail_shards_empty() {
        assert_eq!(shard_task_range(0, 4, 2), 0..0);
        assert_eq!(shard_task_range(1, 4, 2), 0..1);
        assert_eq!(shard_task_range(2, 4, 2), 1..1);
        assert_eq!(shard_task_range(3, 4, 2), 1..2);
    }

    #[test]
    fn runtime_slot_installs_and_clears() {
        #[derive(Debug)]
        struct Dummy;
        impl ProcessShardRuntime for Dummy {
            fn begin_job(&self, _config: &JobConfig) -> ShardJob {
                unreachable!()
            }
            fn collect_manifests(
                &self,
                _job: &ShardJob,
                _expect: &ShardJobCheck,
            ) -> Vec<ShardManifest> {
                unreachable!()
            }
            fn commit_manifest(&self, _job: &ShardJob, _manifest: &ShardManifest) {
                unreachable!()
            }
        }
        assert!(current_runtime().is_none());
        install_runtime(Arc::new(Dummy));
        assert!(current_runtime().is_some());
        clear_runtime();
        assert!(current_runtime().is_none());
    }
}
