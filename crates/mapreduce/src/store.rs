//! Record stores standing in for the distributed file system.
//!
//! MapReduce assumes a distributed file system from which map tasks read
//! their input and to which reduce tasks write their output; iterative
//! algorithms (GreedyMR, StackMR) persist the graph state between rounds in
//! it.  [`KvStore`] models exactly that contract in memory: named datasets
//! of records that can be written once per round and read by the next
//! round.  The [`RecordStore`] trait captures the same persistence surface
//! abstractly, and is implemented both by [`KvStore`] and by the
//! file-backed [`smr_storage::DiskKvStore`], so callers that outgrow
//! memory swap the backend without touching their round logic.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::RwLock;
use smr_storage::DiskKvStore;

use crate::types::Codec;

/// The persistence surface of the HDFS stand-in: named datasets of records
/// written once and read back by later rounds.
///
/// Implemented by the in-memory [`KvStore`] and by the disk-backed
/// [`DiskKvStore`]; both share the same semantics — `write` replaces,
/// `append` extends, missing paths read as empty.
pub trait RecordStore<T> {
    /// Writes (or replaces) the dataset at `path`.
    fn write(&self, path: &str, records: Vec<T>);
    /// Appends records to the dataset at `path`, creating it if missing.
    fn append(&self, path: &str, records: Vec<T>);
    /// Reads the dataset at `path`; empty when the path does not exist.
    fn read(&self, path: &str) -> Arc<Vec<T>>;
    /// Whether a dataset exists at `path`.
    fn exists(&self, path: &str) -> bool;
    /// Removes the dataset at `path`, returning whether it existed.
    fn remove(&self, path: &str) -> bool;
    /// Number of records stored at `path`.
    fn len(&self, path: &str) -> usize;
    /// Whether the dataset at `path` is missing or empty.
    fn is_empty(&self, path: &str) -> bool {
        self.len(path) == 0
    }
    /// All dataset paths currently stored, sorted.
    fn paths(&self) -> Vec<String>;
    /// Total number of records across all datasets.
    fn total_records(&self) -> usize;
    /// Removes every dataset.
    fn clear(&self);
}

/// A named, append-only collection of record datasets.
///
/// Cloning a `KvStore` is cheap and all clones share the same contents,
/// mirroring how every task of a job sees the same file system.
#[derive(Debug, Clone, Default)]
pub struct KvStore<T> {
    inner: Arc<RwLock<BTreeMap<String, Arc<Vec<T>>>>>,
}

impl<T: Clone> KvStore<T> {
    /// Creates an empty store.
    pub fn new() -> Self {
        KvStore {
            inner: Arc::new(RwLock::new(BTreeMap::new())),
        }
    }

    /// Writes (or replaces) the dataset at `path`.
    pub fn write(&self, path: &str, records: Vec<T>) {
        self.inner
            .write()
            .insert(path.to_string(), Arc::new(records));
    }

    /// Appends records to the dataset at `path`, creating it if missing.
    pub fn append(&self, path: &str, records: Vec<T>) {
        let mut guard = self.inner.write();
        match guard.get_mut(path) {
            Some(existing) => {
                let mut merged = existing.as_ref().clone();
                merged.extend(records);
                *existing = Arc::new(merged);
            }
            None => {
                guard.insert(path.to_string(), Arc::new(records));
            }
        }
    }

    /// Reads the dataset at `path`.  Returns an empty vector when the path
    /// does not exist (like reading an empty directory of part files).
    pub fn read(&self, path: &str) -> Arc<Vec<T>> {
        self.inner
            .read()
            .get(path)
            .cloned()
            .unwrap_or_else(|| Arc::new(Vec::new()))
    }

    /// Whether a dataset exists at `path`.
    pub fn exists(&self, path: &str) -> bool {
        self.inner.read().contains_key(path)
    }

    /// Removes the dataset at `path`, returning whether it existed.
    pub fn remove(&self, path: &str) -> bool {
        self.inner.write().remove(path).is_some()
    }

    /// Number of records stored at `path`.
    pub fn len(&self, path: &str) -> usize {
        self.inner.read().get(path).map(|v| v.len()).unwrap_or(0)
    }

    /// Whether the dataset at `path` is missing or empty.
    pub fn is_empty(&self, path: &str) -> bool {
        self.len(path) == 0
    }

    /// All dataset paths currently stored, sorted.
    pub fn paths(&self) -> Vec<String> {
        self.inner.read().keys().cloned().collect()
    }

    /// Total number of records across all datasets.
    pub fn total_records(&self) -> usize {
        self.inner.read().values().map(|v| v.len()).sum()
    }

    /// Removes every dataset.
    pub fn clear(&self) {
        self.inner.write().clear();
    }
}

impl<T: Clone> RecordStore<T> for KvStore<T> {
    fn write(&self, path: &str, records: Vec<T>) {
        KvStore::write(self, path, records)
    }
    fn append(&self, path: &str, records: Vec<T>) {
        KvStore::append(self, path, records)
    }
    fn read(&self, path: &str) -> Arc<Vec<T>> {
        KvStore::read(self, path)
    }
    fn exists(&self, path: &str) -> bool {
        KvStore::exists(self, path)
    }
    fn remove(&self, path: &str) -> bool {
        KvStore::remove(self, path)
    }
    fn len(&self, path: &str) -> usize {
        KvStore::len(self, path)
    }
    fn paths(&self) -> Vec<String> {
        KvStore::paths(self)
    }
    fn total_records(&self) -> usize {
        KvStore::total_records(self)
    }
    fn clear(&self) {
        KvStore::clear(self)
    }
}

impl<T: Codec + Clone> RecordStore<T> for DiskKvStore<T> {
    fn write(&self, path: &str, records: Vec<T>) {
        DiskKvStore::write(self, path, records)
    }
    fn append(&self, path: &str, records: Vec<T>) {
        DiskKvStore::append(self, path, records)
    }
    fn read(&self, path: &str) -> Arc<Vec<T>> {
        Arc::new(DiskKvStore::read(self, path))
    }
    fn exists(&self, path: &str) -> bool {
        DiskKvStore::exists(self, path)
    }
    fn remove(&self, path: &str) -> bool {
        DiskKvStore::remove(self, path)
    }
    fn len(&self, path: &str) -> usize {
        DiskKvStore::len(self, path)
    }
    fn paths(&self) -> Vec<String> {
        DiskKvStore::paths(self)
    }
    fn total_records(&self) -> usize {
        DiskKvStore::total_records(self)
    }
    fn clear(&self) {
        DiskKvStore::clear(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn write_then_read_round_trips() {
        let store: KvStore<u32> = KvStore::new();
        store.write("iteration-0/graph", vec![1, 2, 3]);
        assert_eq!(*store.read("iteration-0/graph"), vec![1, 2, 3]);
        assert!(store.exists("iteration-0/graph"));
        assert_eq!(store.len("iteration-0/graph"), 3);
    }

    #[test]
    fn missing_path_reads_empty() {
        let store: KvStore<u32> = KvStore::new();
        assert!(store.read("nope").is_empty());
        assert!(!store.exists("nope"));
        assert!(store.is_empty("nope"));
    }

    #[test]
    fn append_extends_existing_dataset() {
        let store: KvStore<&'static str> = KvStore::new();
        store.append("out", vec!["a"]);
        store.append("out", vec!["b", "c"]);
        assert_eq!(*store.read("out"), vec!["a", "b", "c"]);
    }

    #[test]
    fn write_replaces_dataset() {
        let store: KvStore<u8> = KvStore::new();
        store.write("x", vec![1]);
        store.write("x", vec![2, 3]);
        assert_eq!(*store.read("x"), vec![2, 3]);
    }

    #[test]
    fn remove_and_clear() {
        let store: KvStore<u8> = KvStore::new();
        store.write("a", vec![1]);
        store.write("b", vec![2]);
        assert!(store.remove("a"));
        assert!(!store.remove("a"));
        assert_eq!(store.paths(), vec!["b".to_string()]);
        store.clear();
        assert_eq!(store.total_records(), 0);
    }

    /// Exercises one round-persistence cycle through the abstract surface.
    fn round_trip_via_trait<S: RecordStore<(u32, u64)>>(store: &S) {
        assert!(store.read("iteration-0/state").is_empty());
        store.write("iteration-0/state", vec![(1, 10), (2, 20)]);
        store.append("iteration-0/state", vec![(3, 30)]);
        assert_eq!(
            *store.read("iteration-0/state"),
            vec![(1, 10), (2, 20), (3, 30)]
        );
        assert_eq!(store.len("iteration-0/state"), 3);
        assert!(store.exists("iteration-0/state"));
        store.write("iteration-1/state", vec![(4, 40)]);
        assert_eq!(
            store.paths(),
            vec![
                "iteration-0/state".to_string(),
                "iteration-1/state".to_string()
            ]
        );
        assert_eq!(store.total_records(), 4);
        assert!(store.remove("iteration-0/state"));
        store.clear();
        assert_eq!(store.total_records(), 0);
    }

    #[test]
    fn kv_store_and_disk_kv_store_share_the_persistence_surface() {
        let memory: KvStore<(u32, u64)> = KvStore::new();
        round_trip_via_trait(&memory);

        let root = std::env::temp_dir().join(format!("smr-recordstore-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let disk: DiskKvStore<(u32, u64)> = DiskKvStore::open(&root).unwrap();
        round_trip_via_trait(&disk);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn clones_share_contents_across_threads() {
        let store: KvStore<usize> = KvStore::new();
        let mut handles = Vec::new();
        for i in 0..4 {
            let store = store.clone();
            handles.push(thread::spawn(move || {
                store.write(&format!("part-{i}"), vec![i; 10]);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(store.paths().len(), 4);
        assert_eq!(store.total_records(), 40);
    }
}
