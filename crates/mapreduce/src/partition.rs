//! Partitioning of intermediate keys into reduce tasks.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::marker::PhantomData;

/// Assigns every intermediate key to one of `num_partitions` reduce tasks.
///
/// The default [`HashPartitioner`] mirrors Hadoop's `HashPartitioner`.  The
/// matching algorithms rely only on the contract that *all* values of a key
/// reach the same reducer, never on which partition that is.
pub trait Partitioner<K>: Send + Sync {
    /// Returns the partition index in `0..num_partitions` for `key`.
    fn partition(&self, key: &K, num_partitions: usize) -> usize;
}

/// Hash-based partitioner (the default).
#[derive(Debug, Clone, Copy, Default)]
pub struct HashPartitioner<K> {
    _marker: PhantomData<fn() -> K>,
}

impl<K> HashPartitioner<K> {
    /// Creates a hash partitioner.
    pub fn new() -> Self {
        HashPartitioner {
            _marker: PhantomData,
        }
    }
}

impl<K: Hash + Send + Sync> Partitioner<K> for HashPartitioner<K> {
    fn partition(&self, key: &K, num_partitions: usize) -> usize {
        debug_assert!(num_partitions > 0);
        let mut hasher = DefaultHasher::new();
        key.hash(&mut hasher);
        (hasher.finish() % num_partitions as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_partitioner_is_deterministic_and_in_range() {
        let p: HashPartitioner<u64> = HashPartitioner::new();
        for key in 0u64..1000 {
            let a = p.partition(&key, 7);
            let b = p.partition(&key, 7);
            assert_eq!(a, b);
            assert!(a < 7);
        }
    }

    #[test]
    fn hash_partitioner_spreads_keys() {
        let p: HashPartitioner<u64> = HashPartitioner::new();
        let mut hits = vec![0usize; 8];
        for key in 0u64..4096 {
            hits[p.partition(&key, 8)] += 1;
        }
        // Every partition should receive a non-trivial share of uniform keys.
        for h in hits {
            assert!(h > 4096 / 8 / 4, "partition starved: {h}");
        }
    }

    #[test]
    fn single_partition_takes_everything() {
        let p: HashPartitioner<String> = HashPartitioner::new();
        assert_eq!(p.partition(&"anything".to_string(), 1), 0);
    }
}
