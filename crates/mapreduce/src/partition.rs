//! Partitioning of intermediate keys into reduce tasks, and the per-task
//! combining buffer that applies the combiner *while* partitioning.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::marker::PhantomData;

use crate::shuffle::combine_sorted_groups;
use crate::types::{Combiner, Key, Value};

/// Assigns every intermediate key to one of `num_partitions` reduce tasks.
///
/// The default [`HashPartitioner`] mirrors Hadoop's `HashPartitioner`.  The
/// matching algorithms rely only on the contract that *all* values of a key
/// reach the same reducer, never on which partition that is.
pub trait Partitioner<K>: Send + Sync {
    /// Returns the partition index in `0..num_partitions` for `key`.
    fn partition(&self, key: &K, num_partitions: usize) -> usize;
}

/// Hash-based partitioner (the default).
#[derive(Debug, Clone, Copy, Default)]
pub struct HashPartitioner<K> {
    _marker: PhantomData<fn() -> K>,
}

impl<K> HashPartitioner<K> {
    /// Creates a hash partitioner.
    pub fn new() -> Self {
        HashPartitioner {
            _marker: PhantomData,
        }
    }
}

impl<K: Hash + Send + Sync> Partitioner<K> for HashPartitioner<K> {
    fn partition(&self, key: &K, num_partitions: usize) -> usize {
        debug_assert!(num_partitions > 0);
        let mut hasher = DefaultHasher::new();
        key.hash(&mut hasher);
        (hasher.finish() % num_partitions as u64) as usize
    }
}

/// Per-map-task buffer that routes intermediate pairs into per-partition
/// buckets and applies the combiner *during* partitioning.
///
/// The buffer holds at most roughly `capacity` records: when the watermark
/// is crossed, every bucket is sorted and run through the combiner in
/// place, shrinking the buffer back to one combined group per key.  A task
/// thus never accumulates its full raw map output before combining — its
/// memory is bounded by the combined working set, not by what the mapper
/// emits.  If a combine pass fails to shrink the buffer (e.g. an identity
/// combiner), the watermark doubles so the buffer degrades to plain
/// buffering instead of re-sorting on every push.
///
/// Under a memory budget the executor additionally watches
/// [`CombiningPartitionBuffer::approx_bytes`] — an estimate of records ×
/// `size_of::<(K, V)>()` — and, when combining cannot keep the buffer
/// under its byte threshold, drains it early with
/// [`CombiningPartitionBuffer::take_sorted_runs`] and spills the runs to
/// disk, so the buffer never combines-in-place forever on a working set
/// that simply does not fit.
///
/// [`CombiningPartitionBuffer::into_sorted_runs`] finishes the task: each
/// bucket is sorted by key (stable) and combined once more, yielding the
/// per-partition *sorted runs* the streaming shuffle merges.
#[derive(Debug)]
pub struct CombiningPartitionBuffer<K, V> {
    buckets: Vec<Vec<(K, V)>>,
    buffered: usize,
    watermark: usize,
    capacity: usize,
    spills: u64,
}

impl<K: Key, V: Value> CombiningPartitionBuffer<K, V> {
    /// Creates a buffer with one bucket per reduce partition and the given
    /// record capacity.
    pub fn new(num_partitions: usize, capacity: usize) -> Self {
        let capacity = capacity.max(1);
        CombiningPartitionBuffer {
            buckets: (0..num_partitions).map(|_| Vec::new()).collect(),
            buffered: 0,
            watermark: capacity,
            capacity,
            spills: 0,
        }
    }

    /// Number of in-place combine passes the buffer has run so far.
    pub fn spills(&self) -> u64 {
        self.spills
    }

    /// Records currently buffered across all partitions.
    pub fn len(&self) -> usize {
        self.buffered
    }

    /// Whether nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.buffered == 0
    }

    /// Estimated bytes currently buffered: records ×
    /// `size_of::<(K, V)>()`.  A lower bound for heap-carrying types,
    /// measured identically to the engine's `shuffle_bytes`.
    pub fn approx_bytes(&self) -> u64 {
        (self.buffered * std::mem::size_of::<(K, V)>()) as u64
    }

    /// Adds one intermediate pair to `partition`, combining in place when
    /// the buffer watermark is crossed and a combiner is present.
    pub fn push<C>(&mut self, partition: usize, key: K, value: V, combiner: Option<&C>)
    where
        C: Combiner<Key = K, Value = V>,
    {
        self.buckets[partition].push((key, value));
        self.buffered += 1;
        if let Some(combiner) = combiner {
            if self.buffered >= self.watermark {
                self.combine_in_place(combiner);
            }
        }
    }

    /// Runs one in-place combine pass immediately (the executor's last
    /// attempt to get back under a byte budget before spilling to disk).
    pub fn combine_now<C: Combiner<Key = K, Value = V>>(&mut self, combiner: &C) {
        self.combine_in_place(combiner);
    }

    fn combine_in_place<C: Combiner<Key = K, Value = V>>(&mut self, combiner: &C) {
        self.spills += 1;
        self.buffered = 0;
        for bucket in &mut self.buckets {
            let mut pairs = std::mem::take(bucket);
            pairs.sort_by(|a, b| a.0.cmp(&b.0));
            *bucket = combine_sorted_groups(pairs, combiner);
            self.buffered += bucket.len();
        }
        // Combining must shrink the buffer below the watermark to be worth
        // repeating; otherwise back off exponentially.
        self.watermark = self.capacity.max(2 * self.buffered);
    }

    /// Drains the buffer: sorts every bucket by key (stable), applies the
    /// final combine pass and returns one sorted run per partition,
    /// leaving the buffer empty and reusable.  This is the spill path's
    /// entry point; [`CombiningPartitionBuffer::into_sorted_runs`] is the
    /// end-of-task variant.
    pub fn take_sorted_runs<C>(&mut self, combiner: Option<&C>) -> Vec<Vec<(K, V)>>
    where
        C: Combiner<Key = K, Value = V>,
    {
        self.buffered = 0;
        self.watermark = self.capacity;
        self.buckets
            .iter_mut()
            .map(|bucket| {
                let mut bucket = std::mem::take(bucket);
                bucket.sort_by(|a, b| a.0.cmp(&b.0));
                match combiner {
                    Some(combiner) => combine_sorted_groups(bucket, combiner),
                    None => bucket,
                }
            })
            .collect()
    }

    /// Finishes the task: sorts every bucket by key (stable) and applies
    /// the final combine pass, returning one sorted run per partition.
    pub fn into_sorted_runs<C>(mut self, combiner: Option<&C>) -> Vec<Vec<(K, V)>>
    where
        C: Combiner<Key = K, Value = V>,
    {
        self.take_sorted_runs(combiner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::IdentityCombiner;

    struct SumCombiner;
    impl Combiner for SumCombiner {
        type Key = u32;
        type Value = u64;
        fn combine(&self, _k: &u32, vs: &[u64]) -> Vec<u64> {
            vec![vs.iter().sum()]
        }
    }

    #[test]
    fn buffer_routes_pairs_and_produces_sorted_combined_runs() {
        let mut buffer: CombiningPartitionBuffer<u32, u64> = CombiningPartitionBuffer::new(2, 100);
        for (k, v) in [(4u32, 1u64), (0, 2), (4, 3), (1, 4), (0, 5)] {
            buffer.push((k % 2) as usize, k, v, Some(&SumCombiner));
        }
        assert_eq!(buffer.len(), 5);
        let runs = buffer.into_sorted_runs(Some(&SumCombiner));
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[0], vec![(0, 7), (4, 4)]);
        assert_eq!(runs[1], vec![(1, 4)]);
    }

    #[test]
    fn overflow_combines_in_place_and_counts_spills() {
        let mut buffer: CombiningPartitionBuffer<u32, u64> = CombiningPartitionBuffer::new(1, 4);
        for i in 0..32u64 {
            buffer.push(0, (i % 2) as u32, 1, Some(&SumCombiner));
        }
        assert!(buffer.spills() > 0, "small buffer must spill");
        // Whatever the spill schedule, the buffer never holds the full raw
        // output: 2 distinct keys combine down to ≤ capacity records.
        assert!(buffer.len() <= 8, "buffer held {} records", buffer.len());
        let runs = buffer.into_sorted_runs(Some(&SumCombiner));
        assert_eq!(runs[0], vec![(0, 16), (1, 16)]);
    }

    #[test]
    fn identity_combiner_backs_off_instead_of_thrashing() {
        let mut buffer: CombiningPartitionBuffer<u32, u64> = CombiningPartitionBuffer::new(1, 4);
        let identity: IdentityCombiner<u32, u64> = IdentityCombiner::new();
        for i in 0..1000u64 {
            buffer.push(0, i as u32, i, Some(&identity));
        }
        // The watermark doubles whenever combining fails to shrink the
        // buffer, so the number of futile passes stays logarithmic.
        assert!(buffer.spills() <= 10, "spilled {} times", buffer.spills());
        assert_eq!(buffer.len(), 1000);
    }

    #[test]
    fn without_a_combiner_the_buffer_only_sorts() {
        let mut buffer: CombiningPartitionBuffer<u32, u64> = CombiningPartitionBuffer::new(1, 2);
        let no_combiner: Option<&SumCombiner> = None;
        for (k, v) in [(3u32, 1u64), (1, 2), (3, 3), (2, 4)] {
            buffer.push(0, k, v, no_combiner);
        }
        assert_eq!(buffer.spills(), 0);
        let runs = buffer.into_sorted_runs(no_combiner);
        assert_eq!(runs[0], vec![(1, 2), (2, 4), (3, 1), (3, 3)]);
    }

    #[test]
    fn take_sorted_runs_drains_and_leaves_the_buffer_reusable() {
        let mut buffer: CombiningPartitionBuffer<u32, u64> = CombiningPartitionBuffer::new(2, 100);
        for (k, v) in [(4u32, 1u64), (0, 2)] {
            buffer.push((k % 2) as usize, k, v, Some(&SumCombiner));
        }
        assert!(buffer.approx_bytes() > 0);
        let first = buffer.take_sorted_runs(Some(&SumCombiner));
        assert_eq!(first[0], vec![(0, 2), (4, 1)]);
        assert!(buffer.is_empty());
        assert_eq!(buffer.approx_bytes(), 0);
        buffer.push(0, 2, 9, Some(&SumCombiner));
        let second = buffer.into_sorted_runs(Some(&SumCombiner));
        assert_eq!(second[0], vec![(2, 9)]);
    }

    #[test]
    fn hash_partitioner_is_deterministic_and_in_range() {
        let p: HashPartitioner<u64> = HashPartitioner::new();
        for key in 0u64..1000 {
            let a = p.partition(&key, 7);
            let b = p.partition(&key, 7);
            assert_eq!(a, b);
            assert!(a < 7);
        }
    }

    #[test]
    fn hash_partitioner_spreads_keys() {
        let p: HashPartitioner<u64> = HashPartitioner::new();
        let mut hits = vec![0usize; 8];
        for key in 0u64..4096 {
            hits[p.partition(&key, 8)] += 1;
        }
        // Every partition should receive a non-trivial share of uniform keys.
        for h in hits {
            assert!(h > 4096 / 8 / 4, "partition starved: {h}");
        }
    }

    #[test]
    fn single_partition_takes_everything() {
        let p: HashPartitioner<String> = HashPartitioner::new();
        assert_eq!(p.partition(&"anything".to_string(), 1), 0);
    }
}
