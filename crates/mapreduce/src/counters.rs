//! Job counters.
//!
//! Hadoop jobs expose named counters (records read, records written, bytes
//! shuffled, …) that the paper's efficiency evaluation relies on.  This
//! module provides the same facility: cheap, thread-safe named counters
//! that map/reduce tasks bump while they run and that the experiment
//! harness reads afterwards.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

/// A single monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Counter {
            value: AtomicU64::new(0),
        }
    }

    /// Adds `delta` to the counter.
    #[inline]
    pub fn add(&self, delta: u64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Increments the counter by one.
    #[inline]
    pub fn increment(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Well-known counter names used by the engine itself.
pub mod builtin {
    /// Records read by map tasks.
    pub const MAP_INPUT_RECORDS: &str = "map_input_records";
    /// Records emitted by map tasks (before combining).
    pub const MAP_OUTPUT_RECORDS: &str = "map_output_records";
    /// Records emitted by combiners (what is actually shuffled).
    pub const COMBINE_OUTPUT_RECORDS: &str = "combine_output_records";
    /// Records that crossed the shuffle into reduce partitions.  Under
    /// the streaming shuffle this is counted *after* the merge-side
    /// combine, so it can be smaller than `combine_output_records`.
    pub const SHUFFLE_RECORDS: &str = "shuffle_records";
    /// Approximate shuffled payload in bytes (records × record size).
    pub const SHUFFLE_BYTES: &str = "shuffle_bytes";
    /// Sorted runs merged by the streaming shuffle.
    pub const MERGE_RUNS: &str = "merge_runs";
    /// In-place combine passes triggered by map-task buffer overflow.
    pub const COMBINE_SPILLS: &str = "combine_spills";
    /// Encoded bytes of sorted runs spilled to disk under a memory budget.
    pub const SPILL_BYTES: &str = "spill_bytes";
    /// Sorted runs spilled to disk under a memory budget.
    pub const DISK_RUNS: &str = "disk_runs";
    /// Distinct key groups presented to reducers.
    pub const REDUCE_INPUT_GROUPS: &str = "reduce_input_groups";
    /// Records emitted by reduce tasks.
    pub const REDUCE_OUTPUT_RECORDS: &str = "reduce_output_records";
}

/// A named collection of counters shared by all tasks of a job.
///
/// Cloning a `Counters` handle is cheap (it is an `Arc` internally) and all
/// clones observe the same values.
#[derive(Debug, Clone, Default)]
pub struct Counters {
    inner: Arc<RwLock<BTreeMap<String, Arc<Counter>>>>,
}

impl Counters {
    /// Creates an empty counter set.
    pub fn new() -> Self {
        Counters::default()
    }

    /// Returns the counter with the given name, creating it at zero if it
    /// does not exist yet.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        if let Some(c) = self.inner.read().get(name) {
            return Arc::clone(c);
        }
        let mut guard = self.inner.write();
        Arc::clone(
            guard
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Counter::new())),
        )
    }

    /// Adds `delta` to the named counter.
    pub fn add(&self, name: &str, delta: u64) {
        self.counter(name).add(delta);
    }

    /// Current value of the named counter (zero if it was never touched).
    pub fn get(&self, name: &str) -> u64 {
        self.inner.read().get(name).map(|c| c.get()).unwrap_or(0)
    }

    /// Snapshot of all counters, sorted by name.
    pub fn snapshot(&self) -> BTreeMap<String, u64> {
        self.inner
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect()
    }

    /// Merges another counter set into this one by adding values
    /// counter-by-counter.  Used by the iterative driver to accumulate
    /// totals across rounds.
    pub fn merge_from(&self, other: &Counters) {
        for (name, value) in other.snapshot() {
            self.add(&name, value);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn counter_accumulates() {
        let c = Counter::new();
        c.increment();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn counters_create_on_demand_and_share() {
        let cs = Counters::new();
        assert_eq!(cs.get("missing"), 0);
        cs.add("a", 3);
        cs.add("a", 2);
        assert_eq!(cs.get("a"), 5);
        let snap = cs.snapshot();
        assert_eq!(snap.get("a"), Some(&5));
    }

    #[test]
    fn counters_are_shared_across_clones_and_threads() {
        let cs = Counters::new();
        let mut handles = Vec::new();
        for _ in 0..8 {
            let cs = cs.clone();
            handles.push(thread::spawn(move || {
                for _ in 0..1000 {
                    cs.add("n", 1);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(cs.get("n"), 8000);
    }

    #[test]
    fn merge_from_adds_counter_by_counter() {
        let a = Counters::new();
        let b = Counters::new();
        a.add("x", 1);
        b.add("x", 2);
        b.add("y", 7);
        a.merge_from(&b);
        assert_eq!(a.get("x"), 3);
        assert_eq!(a.get("y"), 7);
    }
}
