//! Driver for iterative MapReduce algorithms.
//!
//! GreedyMR and StackMR are *chains* of MapReduce jobs: each round runs one
//! or more jobs over the current graph state and decides whether another
//! round is needed.  The driver owns that loop, enforces a round budget,
//! and accumulates per-round metrics so that the experiments can report the
//! "number of MapReduce iterations" series of Figures 1–3 and the
//! per-iteration solution values of Figure 5.
//!
//! The inter-round state of a driven job lives in a
//! [`RoundState`](crate::flow::RoundState): in its default disk-backed
//! mode, the records surviving between rounds sit in the flow's side
//! store as run files (with retirees tombstoned away at read time), so
//! the driver's loop never requires the full record set in RAM between
//! rounds.  Jobs mark round boundaries with
//! [`FlowContext::mark_round`](crate::flow::FlowContext::mark_round) so
//! a [`FlowReport`](crate::flow::FlowReport) can attribute jobs to rounds
//! without aliasing.

use crate::metrics::JobMetrics;

/// What an iterative job wants to do after a round.
#[derive(Debug, Clone, PartialEq)]
pub enum RoundOutcome {
    /// Keep iterating.
    Continue,
    /// The algorithm converged (e.g. no edges remain); stop.
    Converged,
}

/// One round of an iterative MapReduce algorithm.
pub trait IterativeJob {
    /// Executes round `round` (0-based) and reports whether to continue.
    ///
    /// The job returns the metrics of every MapReduce job it ran this
    /// round; most rounds of the matching algorithms run one job, the
    /// maximal-matching subroutine of StackMR runs four (mark, select,
    /// match, cleanup).
    fn run_round(&mut self, round: usize) -> (RoundOutcome, Vec<JobMetrics>);
}

/// Summary of a complete iterative run.
#[derive(Debug, Clone, Default)]
pub struct RunSummary {
    /// Number of rounds executed (driver-level iterations).
    pub rounds: usize,
    /// Number of underlying MapReduce jobs executed across all rounds.
    pub jobs: usize,
    /// Whether the algorithm converged (as opposed to hitting the round
    /// budget).
    pub converged: bool,
    /// Metrics of every job in execution order.
    pub job_metrics: Vec<JobMetrics>,
    /// Accumulated totals over all jobs.
    pub totals: JobMetrics,
}

impl RunSummary {
    /// Total number of records shuffled across all jobs — the paper's
    /// communication cost.
    pub fn total_shuffled_records(&self) -> u64 {
        self.totals.shuffle_records
    }
}

/// Runs an [`IterativeJob`] until convergence or until `max_rounds`.
#[derive(Debug, Clone)]
pub struct IterativeDriver {
    max_rounds: usize,
}

impl IterativeDriver {
    /// Creates a driver with the given round budget.
    pub fn new(max_rounds: usize) -> Self {
        IterativeDriver { max_rounds }
    }

    /// The round budget.
    pub fn max_rounds(&self) -> usize {
        self.max_rounds
    }

    /// Runs `job` to convergence (or the round budget) and returns the
    /// summary.
    pub fn run<J: IterativeJob>(&self, job: &mut J) -> RunSummary {
        let mut summary = RunSummary {
            totals: JobMetrics {
                job_name: "totals".to_string(),
                ..JobMetrics::default()
            },
            ..RunSummary::default()
        };
        for round in 0..self.max_rounds {
            let (outcome, metrics) = job.run_round(round);
            summary.rounds = round + 1;
            summary.jobs += metrics.len();
            for m in &metrics {
                summary.totals.accumulate(m);
            }
            summary.job_metrics.extend(metrics);
            if outcome == RoundOutcome::Converged {
                summary.converged = true;
                break;
            }
        }
        summary
    }
}

impl Default for IterativeDriver {
    fn default() -> Self {
        // Generous budget: the algorithms in this workspace converge in far
        // fewer rounds; the budget only guards against non-termination bugs.
        IterativeDriver::new(10_000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A job that counts down and converges after `n` rounds, reporting one
    /// job with `round + 1` shuffled records per round.
    struct Countdown {
        remaining: usize,
    }

    impl IterativeJob for Countdown {
        fn run_round(&mut self, round: usize) -> (RoundOutcome, Vec<JobMetrics>) {
            let metrics = JobMetrics {
                job_name: format!("round-{round}"),
                shuffle_records: (round + 1) as u64,
                ..JobMetrics::default()
            };
            if self.remaining <= 1 {
                self.remaining = 0;
                (RoundOutcome::Converged, vec![metrics])
            } else {
                self.remaining -= 1;
                (RoundOutcome::Continue, vec![metrics])
            }
        }
    }

    #[test]
    fn driver_stops_on_convergence() {
        let mut job = Countdown { remaining: 5 };
        let summary = IterativeDriver::new(100).run(&mut job);
        assert!(summary.converged);
        assert_eq!(summary.rounds, 5);
        assert_eq!(summary.jobs, 5);
        // 1 + 2 + 3 + 4 + 5 records shuffled in total.
        assert_eq!(summary.total_shuffled_records(), 15);
    }

    #[test]
    fn driver_respects_round_budget() {
        let mut job = Countdown { remaining: 1000 };
        let summary = IterativeDriver::new(3).run(&mut job);
        assert!(!summary.converged);
        assert_eq!(summary.rounds, 3);
    }

    #[test]
    fn zero_round_budget_runs_nothing() {
        struct MustNotRun;
        impl IterativeJob for MustNotRun {
            fn run_round(&mut self, _round: usize) -> (RoundOutcome, Vec<JobMetrics>) {
                panic!("a zero-round driver must never invoke the job");
            }
        }
        let summary = IterativeDriver::new(0).run(&mut MustNotRun);
        assert_eq!(summary.rounds, 0);
        assert_eq!(summary.jobs, 0);
        assert!(!summary.converged, "no rounds ran, so nothing converged");
        assert!(summary.job_metrics.is_empty());
        assert_eq!(summary.total_shuffled_records(), 0);
        assert_eq!(summary.totals.map_input_records, 0);
    }

    #[test]
    fn rounds_with_no_jobs_still_count_as_rounds() {
        // A round may legitimately run zero MapReduce jobs (e.g. a purely
        // driver-side bookkeeping round); the driver must count the round
        // but not inflate the job count or the totals.
        struct Bookkeeping {
            rounds_left: usize,
        }
        impl IterativeJob for Bookkeeping {
            fn run_round(&mut self, _round: usize) -> (RoundOutcome, Vec<JobMetrics>) {
                self.rounds_left -= 1;
                if self.rounds_left == 0 {
                    (RoundOutcome::Converged, Vec::new())
                } else {
                    (RoundOutcome::Continue, Vec::new())
                }
            }
        }
        let summary = IterativeDriver::new(10).run(&mut Bookkeeping { rounds_left: 3 });
        assert!(summary.converged);
        assert_eq!(summary.rounds, 3);
        assert_eq!(summary.jobs, 0);
        assert!(summary.job_metrics.is_empty());
        assert_eq!(summary.total_shuffled_records(), 0);
    }

    #[test]
    fn driver_runs_a_disk_backed_round_state_job_out_of_core() {
        use crate::config::JobConfig;
        use crate::flow::{FlowContext, RoundState, RoundStateMode};

        // An iterative job whose only inter-round state is a disk-backed
        // RoundState: counters drain by one per round and retire at zero.
        struct Drain {
            state: RoundState<u32, u64>,
            flow: FlowContext,
        }
        impl IterativeJob for Drain {
            fn run_round(&mut self, _round: usize) -> (RoundOutcome, Vec<JobMetrics>) {
                self.flow.mark_round();
                let output: Vec<(u32, u64)> = self
                    .state
                    .dataset()
                    .collect()
                    .into_iter()
                    .map(|(k, c)| (k, c - 1))
                    .collect();
                self.state.absorb(output, |_, c| *c > 0);
                let outcome = if self.state.is_empty() {
                    RoundOutcome::Converged
                } else {
                    RoundOutcome::Continue
                };
                (outcome, Vec::new())
            }
        }

        let flow = FlowContext::new(JobConfig::named("driver-rs"));
        let mut state = flow.round_state("drain", RoundStateMode::DiskBacked);
        state.seed(vec![(1u32, 2u64), (2, 4), (3, 1)]);
        let mut job = Drain {
            state,
            flow: flow.clone(),
        };
        let summary = IterativeDriver::new(100).run(&mut job);
        assert!(summary.converged);
        assert_eq!(summary.rounds, 4, "the deepest counter holds 4 rounds");
        assert_eq!(flow.report().num_rounds(), 4);
        assert!(job.state.max_state_bytes() > 0);
    }

    #[test]
    fn multi_job_rounds_are_counted() {
        struct FourJobs {
            rounds_left: usize,
        }
        impl IterativeJob for FourJobs {
            fn run_round(&mut self, _round: usize) -> (RoundOutcome, Vec<JobMetrics>) {
                self.rounds_left -= 1;
                let metrics = vec![JobMetrics::default(); 4];
                if self.rounds_left == 0 {
                    (RoundOutcome::Converged, metrics)
                } else {
                    (RoundOutcome::Continue, metrics)
                }
            }
        }
        let summary = IterativeDriver::default().run(&mut FourJobs { rounds_left: 2 });
        assert_eq!(summary.rounds, 2);
        assert_eq!(summary.jobs, 8);
    }
}
