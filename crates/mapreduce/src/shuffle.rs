//! The streaming shuffle: external k-way merge of per-task sorted runs.
//!
//! Every map task hands the shuffle *sorted runs* per reduce partition
//! (see [`crate::partition::CombiningPartitionBuffer`]) — in memory
//! normally, on disk when the task ran over its memory budget and spilled.
//! Bringing a partition into reducer order is then a k-way merge of k
//! already-sorted runs — `O(n log k)` comparisons instead of an
//! `O(n log n)` full re-sort, and no concatenated intermediate copy.  The
//! merge is *external*: disk runs and in-memory runs (the two arms of the
//! crate-internal `RunStream`) stream through the same tournament one
//! record at a time, so a partition whose runs live on disk is merged
//! without ever materializing more than one record per run.
//!
//! The merge core is a **loser tree** — a tournament where each internal
//! node remembers the *loser* of its match, so replacing the winner's head
//! record replays only the winner's root path (`log k` comparisons, where
//! a binary heap's pop-then-push pays roughly three times that).  On top
//! of it sits a "winner stays" fast path: the tree caches the runner-up
//! leaf, and when a refilled stream's next record still beats that
//! runner-up — the common case for runs with long sorted stretches — the
//! emit costs a single comparison and no replay at all.
//! [`merge_runs_reference`] keeps the straightforward heap merge as an
//! executable model; property tests pin the tournament byte-identical to
//! it.
//!
//! Determinism: runs are merged in **(task index, spill sequence) order**
//! and the merge breaks key ties by run position, so records with equal
//! keys appear in exactly the order a sequential single-threaded execution
//! would produce — regardless of which worker thread ran which task and of
//! where each run's bytes live.

use std::cell::Cell;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

use smr_storage::RunReader;

use crate::types::{Combiner, Key, Value};

/// One sorted run feeding the merge: either still in memory, or spilled to
/// a run file and streamed back record by record.
///
/// A decode failure while streaming a disk run panics: a spill file the
/// engine itself just wrote cannot legitimately fail to decode, so this is
/// corruption (or an exhausted disk), not a recoverable state.
#[derive(Debug)]
pub(crate) enum RunStream<K, V> {
    /// An in-memory sorted run.
    Memory(std::vec::IntoIter<(K, V)>),
    /// A sorted run spilled to disk.
    Disk(RunReader<(K, V)>),
}

impl<K: Key, V: Value> Iterator for RunStream<K, V> {
    type Item = (K, V);

    fn next(&mut self) -> Option<(K, V)> {
        match self {
            RunStream::Memory(iter) => iter.next(),
            RunStream::Disk(reader) => reader
                .next_record()
                .unwrap_or_else(|e| panic!("spilled run unreadable: {e}")),
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match self {
            RunStream::Memory(iter) => iter.size_hint(),
            RunStream::Disk(reader) => reader.size_hint(),
        }
    }
}

/// Sentinel for [`LoserTree::runner_up`]: no cached runner-up, the next
/// pop must replay.
const NO_RUNNER_UP: usize = usize::MAX;

/// The tournament at the heart of the merge.
///
/// Streams occupy the leaves (padded to a power of two; padding leaves
/// hold a permanently-exhausted head).  Internal node `n` stores the leaf
/// that *lost* the match played there, and `losers[0]` holds the overall
/// winner.  Emitting the winner therefore replays only the winner's
/// leaf-to-root path: at each node the new contender plays the stored
/// loser, swapping in when it loses.  Heads compare by `(exhausted, key,
/// leaf index)` — exhausted streams sort last, and the leaf-index
/// tie-break is exactly the run-position determinism contract.
///
/// The replay also tracks the minimum over the path's losers, which after
/// a full replay *is* the global runner-up (the second-best head must have
/// lost its last match to the winner, so it sits on the winner's path).
/// That cached runner-up powers the fast path in [`LoserTree::pop`].
struct LoserTree<K, V, I> {
    streams: Vec<I>,
    /// Head record of each leaf; `None` = exhausted (or padding).
    heads: Vec<Option<(K, V)>>,
    /// `losers[0]`: the winning leaf.  `losers[1..]`: per-node losers.
    losers: Vec<usize>,
    /// Leaf count — `streams.len()` padded to a power of two.
    capacity: usize,
    /// Best non-winner leaf, or [`NO_RUNNER_UP`] when not cached.
    runner_up: usize,
}

impl<K: Ord, V, I: Iterator<Item = (K, V)>> LoserTree<K, V, I> {
    fn new(streams: Vec<I>) -> Self {
        let mut streams = streams;
        let capacity = streams.len().next_power_of_two().max(1);
        let mut heads: Vec<Option<(K, V)>> = Vec::with_capacity(capacity);
        for stream in streams.iter_mut() {
            heads.push(stream.next());
        }
        heads.resize_with(capacity, || None);
        let mut tree = LoserTree {
            streams,
            heads,
            losers: vec![0; capacity],
            capacity,
            runner_up: NO_RUNNER_UP,
        };
        tree.build();
        tree
    }

    /// Plays the full tournament bottom-up, filling every node's loser.
    fn build(&mut self) {
        // winner[n] for the implicit tree with leaves at capacity..2*capacity.
        let mut winner: Vec<usize> = vec![0; 2 * self.capacity];
        for leaf in 0..self.capacity {
            winner[self.capacity + leaf] = leaf;
        }
        for node in (1..self.capacity).rev() {
            let (a, b) = (winner[2 * node], winner[2 * node + 1]);
            if self.beats(a, b) {
                winner[node] = a;
                self.losers[node] = b;
            } else {
                winner[node] = b;
                self.losers[node] = a;
            }
        }
        self.losers[0] = winner[1];
    }

    /// Whether leaf `a`'s head wins against leaf `b`'s: present beats
    /// exhausted, then smaller key, then smaller leaf index (run order).
    fn beats(&self, a: usize, b: usize) -> bool {
        match (&self.heads[a], &self.heads[b]) {
            (Some((ka, _)), Some((kb, _))) => match ka.cmp(kb) {
                Ordering::Less => true,
                Ordering::Greater => false,
                Ordering::Equal => a < b,
            },
            (Some(_), None) => true,
            (None, _) => false,
        }
    }

    /// Emits the smallest head, refills its stream and restores the
    /// tournament — via the one-comparison fast path when the refilled
    /// record still beats the cached runner-up.
    fn pop(&mut self) -> Option<(K, V)> {
        let winner = self.losers[0];
        // The `?` must fire before touching `streams`: an exhausted
        // tournament can be won by a padding leaf with no stream behind it.
        let record = self.heads[winner].take()?;
        self.heads[winner] = self.streams[winner].next();
        if self.runner_up == NO_RUNNER_UP || !self.beats(winner, self.runner_up) {
            self.replay(winner);
        }
        // else: winner stays — no other head changed, so the cached
        // runner-up is still the best of the rest.
        Some(record)
    }

    /// Replays `leaf`'s path to the root, swapping with stored losers,
    /// and re-caches the runner-up when it can.
    ///
    /// The runner-up cache is only valid when `leaf` itself wins the
    /// replay: then every match the winner ever won lies on this path, so
    /// the path's best loser is the global second-best — a second walk of
    /// the path computes it, paid only when the winner stayed (exactly the
    /// streak case the fast path then turns into one comparison per
    /// record).  When some other leaf takes over mid-path, the true
    /// runner-up may sit on the part of the *new* winner's path this
    /// replay never visited — the cache is dropped and the next pop
    /// replays unconditionally, keeping the no-streak replay at one
    /// comparison per level.
    fn replay(&mut self, leaf: usize) {
        let mut winner = leaf;
        let mut node = (self.capacity + leaf) / 2;
        while node >= 1 {
            if self.beats(self.losers[node], winner) {
                std::mem::swap(&mut self.losers[node], &mut winner);
            }
            node /= 2;
        }
        self.losers[0] = winner;
        if winner == leaf {
            let mut runner_up = NO_RUNNER_UP;
            let mut node = (self.capacity + leaf) / 2;
            while node >= 1 {
                if runner_up == NO_RUNNER_UP || self.beats(self.losers[node], runner_up) {
                    runner_up = self.losers[node];
                }
                node /= 2;
            }
            self.runner_up = runner_up;
        } else {
            self.runner_up = NO_RUNNER_UP;
        }
    }
}

/// Merges sorted in-memory runs into one sorted sequence.
///
/// Each input run must already be sorted by key (stable order within equal
/// keys).  Ties between runs are broken by run position: for equal keys,
/// records of `runs[0]` come before records of `runs[1]`, and so on — the
/// caller passes runs in task-index order to make the merge deterministic.
/// (Within one run the order is preserved automatically: at most one entry
/// per run lives in the tournament at a time.)
pub fn merge_runs<K: Ord, V>(runs: Vec<Vec<(K, V)>>) -> Vec<(K, V)> {
    if runs.len() <= 1 {
        return runs.into_iter().next().unwrap_or_default();
    }
    merge_streams(runs.into_iter().map(Vec::into_iter).collect())
}

/// The general external merge behind [`merge_runs`]: merges any sorted
/// record streams (in-memory iterators, disk-run readers, or a mix) in
/// stream order, one buffered record per stream.
pub(crate) fn merge_streams<K: Ord, V, I>(streams: Vec<I>) -> Vec<(K, V)>
where
    I: Iterator<Item = (K, V)>,
{
    let total: usize = streams.iter().map(|i| i.size_hint().0).sum();
    let mut tree = LoserTree::new(streams);
    let mut merged = Vec::with_capacity(total);
    while let Some(record) = tree.pop() {
        merged.push(record);
    }
    merged
}

/// The straightforward binary-heap merge the loser tree replaced, kept as
/// the executable model: property tests assert the tournament merge is
/// byte-identical to it (same `(key, run)` tie-break), and the perf
/// harness measures the tournament against it.  Not part of the public
/// API surface.
#[doc(hidden)]
pub fn merge_runs_reference<K: Ord, V>(runs: Vec<Vec<(K, V)>>) -> Vec<(K, V)> {
    struct HeapEntry<K, V> {
        key: K,
        value: V,
        run: usize,
    }
    impl<K: Ord, V> PartialEq for HeapEntry<K, V> {
        fn eq(&self, other: &Self) -> bool {
            self.key == other.key && self.run == other.run
        }
    }
    impl<K: Ord, V> Eq for HeapEntry<K, V> {}
    impl<K: Ord, V> PartialOrd for HeapEntry<K, V> {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }
    impl<K: Ord, V> Ord for HeapEntry<K, V> {
        fn cmp(&self, other: &Self) -> Ordering {
            // Reversed: the max-heap must surface the smallest (key, run).
            other
                .key
                .cmp(&self.key)
                .then_with(|| other.run.cmp(&self.run))
        }
    }
    let mut iters: Vec<_> = runs.into_iter().map(Vec::into_iter).collect();
    let total: usize = iters.iter().map(|i| i.size_hint().0).sum();
    let mut heap: BinaryHeap<HeapEntry<K, V>> = BinaryHeap::with_capacity(iters.len());
    for (run, iter) in iters.iter_mut().enumerate() {
        if let Some((key, value)) = iter.next() {
            heap.push(HeapEntry { key, value, run });
        }
    }
    let mut merged = Vec::with_capacity(total);
    while let Some(entry) = heap.pop() {
        merged.push((entry.key, entry.value));
        if let Some((key, value)) = iters[entry.run].next() {
            heap.push(HeapEntry {
                key,
                value,
                run: entry.run,
            });
        }
    }
    merged
}

thread_local! {
    /// Key clones taken by the combine fan-out on this thread.  The merge
    /// paths move keys instead of cloning them wherever they can; this
    /// counter is the executable proof — tests assert it stays at zero
    /// for single-output combiners (the overwhelmingly common kind).
    static KEY_CLONES: Cell<u64> = const { Cell::new(0) };
}

/// Key clones the combine fan-out paths have taken on the calling thread
/// so far.  Test/bench instrumentation, not public API.
#[doc(hidden)]
pub fn key_clones_on_this_thread() -> u64 {
    KEY_CLONES.with(Cell::get)
}

/// Clones a key for a multi-output combiner fan-out, counting it.
fn clone_key_counted<K: Clone>(key: &K) -> K {
    KEY_CLONES.with(|count| count.set(count.get() + 1));
    key.clone()
}

/// Emits a combiner's outputs for one group, moving the key into the last
/// output and cloning it only for the outputs before it — zero clones for
/// the usual one-output combiner.
fn emit_combined<K: Clone, V>(key: K, mut outputs: Vec<V>, out: &mut Vec<(K, V)>) {
    let last = outputs.pop();
    for value in outputs {
        out.push((clone_key_counted(&key), value));
    }
    if let Some(value) = last {
        out.push((key, value));
    }
}

/// Merges sorted record streams and applies `combiner` to every key group
/// in one fused pass: records stream from the tournament straight into
/// per-key groups, with no intermediate merged vector and no second scan.
///
/// A group holding a single value passes through untouched — it is
/// already the output of a map-side combine, so re-applying the combiner
/// would only burn cycles (the combiner contract makes the extra
/// application a no-op semantically).  The result is byte-identical to
/// [`merge_streams`] followed by a grouped combine.
pub(crate) fn merge_streams_combining<C: Combiner, I>(
    streams: Vec<I>,
    combiner: &C,
) -> Vec<(C::Key, C::Value)>
where
    I: Iterator<Item = (C::Key, C::Value)>,
{
    let total: usize = streams.iter().map(|i| i.size_hint().0).sum();
    let mut tree = LoserTree::new(streams);
    let mut combined = Vec::with_capacity(total);
    let mut group: Option<(C::Key, Vec<C::Value>)> = None;
    let flush = |group: Option<(C::Key, Vec<C::Value>)>, out: &mut Vec<_>| {
        if let Some((key, mut values)) = group {
            if values.len() == 1 {
                out.push((key, values.pop().expect("one value")));
            } else {
                let outputs = combiner.combine(&key, &values);
                emit_combined(key, outputs, out);
            }
        }
    };
    while let Some((key, value)) = tree.pop() {
        match &mut group {
            Some((group_key, values)) if *group_key == key => values.push(value),
            _ => {
                flush(group.take(), &mut combined);
                group = Some((key, vec![value]));
            }
        }
    }
    flush(group, &mut combined);
    combined
}

/// Applies a combiner to a key-sorted sequence in one pass, consuming the
/// input.  Keys and values are moved, not cloned — a multi-output
/// combiner clones its key only for the outputs before the last.
///
/// Every group goes through the combiner exactly once — including
/// singleton groups, matching the legacy per-task combine.  Used for
/// task-side combining (final run generation and buffer spills).
pub(crate) fn combine_sorted_groups<C: Combiner>(
    pairs: Vec<(C::Key, C::Value)>,
    combiner: &C,
) -> Vec<(C::Key, C::Value)> {
    let mut combined = Vec::with_capacity(pairs.len());
    let mut iter = pairs.into_iter().peekable();
    while let Some((key, value)) = iter.next() {
        let mut values = vec![value];
        while iter.peek().is_some_and(|(next_key, _)| *next_key == key) {
            values.push(iter.next().expect("peeked").1);
        }
        let outputs = combiner.combine(&key, &values);
        emit_combined(key, outputs, &mut combined);
    }
    combined
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Test shorthand: the fused merge+combine over in-memory runs.
    fn merge_runs_combining<C: Combiner>(
        runs: Vec<Vec<(C::Key, C::Value)>>,
        combiner: &C,
    ) -> Vec<(C::Key, C::Value)> {
        merge_streams_combining(runs.into_iter().map(Vec::into_iter).collect(), combiner)
    }

    struct SumCombiner;
    impl Combiner for SumCombiner {
        type Key = u32;
        type Value = u64;
        fn combine(&self, _k: &u32, vs: &[u64]) -> Vec<u64> {
            vec![vs.iter().sum()]
        }
    }

    /// Reference implementation: concatenate in run order, stable-sort by
    /// key — exactly what the legacy shuffle does.
    fn concat_and_sort(runs: &[Vec<(u32, char)>]) -> Vec<(u32, char)> {
        let mut all: Vec<(u32, char)> = runs.iter().flatten().cloned().collect();
        all.sort_by_key(|record| record.0);
        all
    }

    #[test]
    fn zero_runs_merge_to_nothing() {
        let merged: Vec<(u32, char)> = merge_runs(Vec::new());
        assert!(merged.is_empty());
    }

    #[test]
    fn one_run_passes_through_unchanged() {
        let run = vec![(1u32, 'a'), (1, 'b'), (3, 'c')];
        assert_eq!(merge_runs(vec![run.clone()]), run);
    }

    #[test]
    fn empty_runs_among_nonempty_are_ignored() {
        let runs = vec![vec![], vec![(2u32, 'x')], vec![], vec![(1, 'y')]];
        assert_eq!(merge_runs(runs), vec![(1, 'y'), (2, 'x')]);
    }

    #[test]
    fn duplicate_keys_straddling_run_boundaries_keep_run_order() {
        // Key 5 appears in all three runs (twice in the first); the merge
        // must emit its values in run order with within-run order intact.
        let runs = vec![
            vec![(1u32, 'a'), (5, 'b'), (5, 'c')],
            vec![(5, 'd'), (9, 'e')],
            vec![(0, 'f'), (5, 'g')],
        ];
        let merged = merge_runs(runs.clone());
        assert_eq!(
            merged,
            vec![
                (0, 'f'),
                (1, 'a'),
                (5, 'b'),
                (5, 'c'),
                (5, 'd'),
                (5, 'g'),
                (9, 'e')
            ]
        );
        assert_eq!(merged, concat_and_sort(&runs));
    }

    #[test]
    fn run_entirely_greater_than_all_others_is_appended() {
        let runs = vec![
            vec![(100u32, 'x'), (200, 'y'), (300, 'z')],
            vec![(1, 'a'), (2, 'b')],
            vec![(3, 'c')],
        ];
        let merged = merge_runs(runs.clone());
        assert_eq!(
            merged,
            vec![
                (1, 'a'),
                (2, 'b'),
                (3, 'c'),
                (100, 'x'),
                (200, 'y'),
                (300, 'z')
            ]
        );
        assert_eq!(merged, concat_and_sort(&runs));
    }

    #[test]
    fn merge_agrees_with_concat_and_stable_sort_on_many_shapes() {
        // Deterministic pseudo-random runs with heavy key collisions.
        let mut state = 0x2545_F491_4F6C_DD1D_u64;
        let mut next = move |modulus: u64| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state % modulus
        };
        for num_runs in [2usize, 3, 5, 8] {
            let mut runs: Vec<Vec<(u32, char)>> = Vec::new();
            let mut label = b'a';
            for _ in 0..num_runs {
                let len = next(9) as usize;
                let mut run: Vec<(u32, char)> = (0..len)
                    .map(|_| {
                        let key = next(6) as u32;
                        let value = label as char;
                        label = if label == b'z' { b'a' } else { label + 1 };
                        (key, value)
                    })
                    .collect();
                run.sort_by_key(|record| record.0);
                runs.push(run);
            }
            assert_eq!(
                merge_runs(runs.clone()),
                concat_and_sort(&runs),
                "runs={runs:?}"
            );
            assert_eq!(
                merge_runs(runs.clone()),
                merge_runs_reference(runs.clone()),
                "tournament diverged from the heap model: runs={runs:?}"
            );
        }
    }

    #[test]
    fn tournament_matches_the_heap_model_on_non_power_of_two_run_counts() {
        // 3, 5, 6 and 7 runs exercise the padding leaves (permanently
        // exhausted heads) the power-of-two tree adds.
        for num_runs in [3usize, 5, 6, 7] {
            let runs: Vec<Vec<(u32, u32)>> = (0..num_runs)
                .map(|r| {
                    (0..10u32)
                        .map(|i| (i * (r as u32 + 1) % 7, r as u32))
                        .collect::<Vec<_>>()
                })
                .map(|mut run| {
                    run.sort_by_key(|record| record.0);
                    run
                })
                .collect();
            assert_eq!(merge_runs(runs.clone()), merge_runs_reference(runs));
        }
    }

    #[test]
    fn external_merge_mixes_disk_and_memory_runs() {
        use smr_storage::RunWriter;
        let path =
            std::env::temp_dir().join(format!("smr-shuffle-mixed-{}.run", std::process::id()));
        let disk_run = vec![(1u32, 'd'), (5, 'e')];
        let mut writer: RunWriter<(u32, char)> = RunWriter::create(&path).unwrap();
        for r in &disk_run {
            writer.push(r).unwrap();
        }
        writer.finish().unwrap();

        let memory_run = vec![(2u32, 'm'), (5, 'n')];
        let streams: Vec<RunStream<u32, char>> = vec![
            RunStream::Disk(RunReader::open(&path).unwrap()),
            RunStream::Memory(memory_run.clone().into_iter()),
        ];
        let merged = merge_streams(streams);
        // Same result as an all-in-memory merge in the same run order —
        // including the (5, _) tie, broken by run position.
        assert_eq!(merged, merge_runs(vec![disk_run, memory_run]));
        assert_eq!(merged, vec![(1, 'd'), (2, 'm'), (5, 'e'), (5, 'n')]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn combine_sorted_groups_collapses_each_group_once() {
        let pairs = vec![(1u32, 10u64), (1, 20), (2, 5), (3, 1), (3, 2), (3, 3)];
        let combined = combine_sorted_groups(pairs, &SumCombiner);
        assert_eq!(combined, vec![(1, 30), (2, 5), (3, 6)]);
    }

    struct CountingCombiner(std::sync::atomic::AtomicUsize);
    impl Combiner for CountingCombiner {
        type Key = u32;
        type Value = u64;
        fn combine(&self, _k: &u32, vs: &[u64]) -> Vec<u64> {
            self.0.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            vec![vs.iter().sum()]
        }
    }

    #[test]
    fn merging_combine_skips_singleton_groups() {
        let runs = vec![vec![(1u32, 10u64), (2, 5)], vec![(2, 6), (3, 1)]];
        let combiner = CountingCombiner(std::sync::atomic::AtomicUsize::new(0));
        let combined = merge_runs_combining(runs, &combiner);
        assert_eq!(combined, vec![(1, 10), (2, 11), (3, 1)]);
        // Only the key-2 group (two values, straddling the runs) went
        // through the combiner.
        assert_eq!(combiner.0.load(std::sync::atomic::Ordering::Relaxed), 1);
    }

    #[test]
    fn merging_combine_matches_merge_then_combine() {
        let runs = vec![
            vec![(1u32, 1u64), (1, 2), (4, 4)],
            vec![(0, 9), (1, 3), (4, 1)],
            vec![(4, 2)],
        ];
        let fused = merge_runs_combining(runs.clone(), &SumCombiner);
        assert_eq!(fused, vec![(0, 9), (1, 6), (4, 7)]);
        // Zero and one-run inputs go through the same grouped path.
        let empty: Vec<Vec<(u32, u64)>> = Vec::new();
        assert!(merge_runs_combining(empty, &SumCombiner).is_empty());
        let single = vec![vec![(1u32, 1u64), (1, 2), (2, 5)]];
        assert_eq!(
            merge_runs_combining(single, &SumCombiner),
            vec![(1, 3), (2, 5)]
        );
    }

    #[test]
    fn single_output_combiners_never_clone_keys() {
        let runs = vec![
            vec![(1u32, 1u64), (1, 2), (4, 4)],
            vec![(0, 9), (1, 3), (4, 1)],
        ];
        let before = key_clones_on_this_thread();
        let fused = merge_runs_combining(runs, &SumCombiner);
        assert_eq!(fused, vec![(0, 9), (1, 6), (4, 5)]);
        let sorted =
            combine_sorted_groups(vec![(1u32, 1u64), (1, 2), (2, 5), (3, 7)], &SumCombiner);
        assert_eq!(sorted, vec![(1, 3), (2, 5), (3, 7)]);
        assert_eq!(
            key_clones_on_this_thread(),
            before,
            "a one-output combiner must move its key, never clone it"
        );
    }

    /// A combiner that fans each group out to one output per value —
    /// exercises the clone-all-but-last path.
    struct FanOutCombiner;
    impl Combiner for FanOutCombiner {
        type Key = u32;
        type Value = u64;
        fn combine(&self, _k: &u32, vs: &[u64]) -> Vec<u64> {
            vs.to_vec()
        }
    }

    #[test]
    fn multi_output_combiners_clone_one_key_less_than_their_outputs() {
        let before = key_clones_on_this_thread();
        // One group of three values → three outputs → exactly two clones.
        let combined = combine_sorted_groups(vec![(7u32, 1u64), (7, 2), (7, 3)], &FanOutCombiner);
        assert_eq!(combined, vec![(7, 1), (7, 2), (7, 3)]);
        assert_eq!(key_clones_on_this_thread(), before + 2);
    }

    #[test]
    fn combine_sorted_groups_handles_empty_input() {
        let combined = combine_sorted_groups(Vec::new(), &SumCombiner);
        assert!(combined.is_empty());
    }
}
