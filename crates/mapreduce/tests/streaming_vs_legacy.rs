//! Property tests locking the streaming shuffle to the legacy shuffle:
//! for random mapper/reducer/combiner instances over random inputs, the
//! streaming path's `JobResult.output` is **byte-identical** to the legacy
//! concat+sort path, across thread counts 1/2/8 and map task counts
//! 1/7/64, including tiny combining buffers that force in-place spills.
//!
//! The reducer family includes an order-sensitive op (`First`) so the
//! tests pin down not just the multiset of output records but the exact
//! deterministic ordering contract of the engine.

// The legacy path is deprecated but must stay testable until removal.
#![allow(deprecated)]

use proptest::prelude::*;
use smr_mapreduce::prelude::*;

/// A mapper whose shape (fan-out, key space, key mixing) is generated per
/// test case.
struct RandomMapper {
    fanout: u32,
    key_mod: u32,
    mix: u32,
}

impl Mapper for RandomMapper {
    type InKey = u32;
    type InValue = u64;
    type OutKey = u32;
    type OutValue = u64;
    fn map(&self, k: &u32, v: &u64, out: &mut Emitter<u32, u64>) {
        for f in 0..self.fanout {
            let key = k
                .wrapping_mul(2_654_435_761)
                .wrapping_add(f.wrapping_mul(self.mix))
                % self.key_mod;
            out.emit(key, v.wrapping_add(u64::from(f)));
        }
    }
}

/// The associative fold a combiner/reducer pair applies.  Every op honours
/// the combiner contract (applying it any number of times, at any
/// granularity, leaves the final reduce output unchanged).
#[derive(Debug, Clone, Copy)]
enum Op {
    Sum,
    Max,
    Min,
    /// Keeps the first value in engine order — order-sensitive on purpose.
    First,
}

impl Op {
    fn from_index(i: u8) -> Op {
        match i % 4 {
            0 => Op::Sum,
            1 => Op::Max,
            2 => Op::Min,
            _ => Op::First,
        }
    }

    fn fold(self, values: &[u64]) -> u64 {
        match self {
            Op::Sum => values.iter().fold(0u64, |a, b| a.wrapping_add(*b)),
            Op::Max => values.iter().copied().max().unwrap_or(0),
            Op::Min => values.iter().copied().min().unwrap_or(0),
            Op::First => values.first().copied().unwrap_or(0),
        }
    }
}

struct OpCombiner(Op);
impl Combiner for OpCombiner {
    type Key = u32;
    type Value = u64;
    fn combine(&self, _k: &u32, vs: &[u64]) -> Vec<u64> {
        vec![self.0.fold(vs)]
    }
}

struct OpReducer(Op);
impl Reducer for OpReducer {
    type Key = u32;
    type InValue = u64;
    type OutKey = u32;
    type OutValue = u64;
    fn reduce(&self, k: &u32, vs: &[u64], out: &mut Emitter<u32, u64>) {
        out.emit(*k, self.0.fold(vs));
    }
}

struct Case {
    mapper: RandomMapper,
    op: Op,
    use_combiner: bool,
    reduce_tasks: usize,
    combine_buffer: usize,
    input: Vec<(u32, u64)>,
}

impl Case {
    fn run(&self, mode: ShuffleMode, threads: usize, map_tasks: usize) -> Vec<(u32, u64)> {
        let job = Job::new(
            JobConfig::named("prop-ab")
                .with_shuffle_mode(mode)
                .with_threads(threads)
                .with_map_tasks(map_tasks)
                .with_reduce_tasks(self.reduce_tasks)
                .with_combine_buffer_records(self.combine_buffer),
        );
        let result = if self.use_combiner {
            job.run_with_combiner(
                &self.mapper,
                &OpCombiner(self.op),
                &OpReducer(self.op),
                self.input.clone(),
            )
        } else {
            job.run(&self.mapper, &OpReducer(self.op), self.input.clone())
        };
        result.output
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn streaming_output_is_byte_identical_to_legacy(
        input in proptest::collection::vec((0u32..40, 0u64..1_000), 0..70),
        fanout in 1u32..4,
        key_mod in 1u32..13,
        mix in 0u32..100,
        op_index in 0u8..4,
        combiner_coin in 0u32..2,
        reduce_tasks in 1usize..5,
        combine_buffer in 1usize..20,
    ) {
        let case = Case {
            mapper: RandomMapper { fanout, key_mod, mix },
            op: Op::from_index(op_index),
            use_combiner: combiner_coin == 1,
            reduce_tasks,
            combine_buffer,
            input,
        };
        // One legacy run is the reference; legacy itself must be invariant
        // under scheduling, so it is re-checked at every combination too.
        let reference = case.run(ShuffleMode::LegacySort, 2, 3);
        for threads in [1usize, 2, 8] {
            for map_tasks in [1usize, 7, 64] {
                let streaming = case.run(ShuffleMode::Streaming, threads, map_tasks);
                prop_assert!(
                    streaming == reference,
                    "streaming diverged (threads={threads} map_tasks={map_tasks}): {streaming:?} != {reference:?}"
                );
                let legacy = case.run(ShuffleMode::LegacySort, threads, map_tasks);
                prop_assert!(
                    legacy == reference,
                    "legacy nondeterministic (threads={threads} map_tasks={map_tasks}): {legacy:?} != {reference:?}"
                );
            }
        }
    }

    #[test]
    fn merge_side_combining_never_increases_shuffle_volume(
        input in proptest::collection::vec((0u32..30, 0u64..1_000), 1..60),
        key_mod in 1u32..8,
        map_tasks in 2usize..8,
    ) {
        let mapper = RandomMapper { fanout: 2, key_mod, mix: 7 };
        let run = |mode: ShuffleMode| {
            Job::new(
                JobConfig::named("prop-volume")
                    .with_shuffle_mode(mode)
                    .with_threads(2)
                    .with_map_tasks(map_tasks)
                    .with_reduce_tasks(2),
            )
            .run_with_combiner(&mapper, &OpCombiner(Op::Sum), &OpReducer(Op::Sum), input.clone())
        };
        let legacy = run(ShuffleMode::LegacySort);
        let streaming = run(ShuffleMode::Streaming);
        prop_assert_eq!(streaming.output, legacy.output);
        // The merge-side combine can only shrink what reaches reducers.
        prop_assert!(streaming.metrics.shuffle_records <= legacy.metrics.shuffle_records);
        // Both paths agree on what the map side produced.
        prop_assert_eq!(
            streaming.metrics.map_output_records,
            legacy.metrics.map_output_records
        );
    }
}
