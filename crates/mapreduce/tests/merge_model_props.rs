//! Property tests locking the tournament (loser-tree) merge to the
//! binary-heap merge it replaced: across run counts {1, 2, 7, 64} and
//! duplicate-key densities from all-distinct to nearly-all-equal, the two
//! merges must be **byte-identical** — same records, same order, same
//! `(key, run-position)` tie-break.  Values tag their `(run, position)` of
//! origin, so any deviation in the determinism contract (equal keys emit
//! in run order, within-run order intact) shows up as a concrete diff,
//! not just a multiset mismatch.

use proptest::prelude::*;
use smr_mapreduce::merge_runs;
use smr_mapreduce::shuffle::merge_runs_reference;

/// Deterministic xorshift so run shapes derive from one seed.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self, modulus: u64) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0 % modulus
    }
}

/// Builds `run_count` sorted runs whose keys are drawn modulo `key_mod` —
/// small moduli force heavy duplicate-key collisions across runs.  Each
/// value records where the record came from.
fn build_runs(
    seed: u64,
    run_count: usize,
    key_mod: u64,
    max_len: usize,
) -> Vec<Vec<(u32, (u32, u32))>> {
    let mut rng = XorShift(seed | 1);
    (0..run_count)
        .map(|run| {
            let len = rng.next(max_len as u64 + 1) as usize;
            let mut records: Vec<(u32, (u32, u32))> = (0..len)
                .map(|position| {
                    let key = rng.next(key_mod) as u32;
                    (key, (run as u32, position as u32))
                })
                .collect();
            records.sort_by_key(|record| record.0);
            records
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn tournament_merge_is_model_identical_to_the_heap_merge(
        seed in 1u64..1_000_000,
        key_mod in 1u64..48,
        max_len in 0usize..40,
    ) {
        for run_count in [1usize, 2, 7, 64] {
            let runs = build_runs(seed, run_count, key_mod, max_len);
            let tournament = merge_runs(runs.clone());
            let heap = merge_runs_reference(runs.clone());
            prop_assert!(
                tournament == heap,
                "loser tree diverged from the heap model: run_count={run_count} \
                 key_mod={key_mod} runs={runs:?}"
            );
        }
    }

    #[test]
    fn all_equal_keys_emit_in_exact_run_position_order(
        run_count_index in 0usize..4,
        len in 1usize..12,
    ) {
        // The degenerate density: every record shares one key, so the
        // output order IS the tie-break contract and nothing else.
        let run_count = [1usize, 2, 7, 64][run_count_index];
        let runs: Vec<Vec<(u32, (u32, u32))>> = (0..run_count)
            .map(|run| {
                (0..len)
                    .map(|position| (7u32, (run as u32, position as u32)))
                    .collect()
            })
            .collect();
        let merged = merge_runs(runs.clone());
        let expected: Vec<(u32, (u32, u32))> = runs.iter().flatten().copied().collect();
        prop_assert!(merged == expected, "tie-break order broken: {merged:?}");
        prop_assert_eq!(&merged, &merge_runs_reference(runs));
    }
}
