//! Property tests locking the streaming shuffle to a sequential reference
//! model: for random mapper/reducer/combiner instances over random inputs,
//! `JobResult.output` is **byte-identical** to a single-threaded
//! simulation of the MapReduce contract — across thread counts 1/2/8, map
//! task counts 1/7/64, tiny combining buffers that force in-place combine
//! passes, and memory budgets {64 B, 4 KB, unlimited} that force the
//! disk-spilling shuffle path.
//!
//! The reducer family includes an order-sensitive op (`First`) so the
//! tests pin down not just the multiset of output records but the exact
//! deterministic ordering contract of the engine — including the
//! guarantee that spilled runs merge back in emission order.

use proptest::prelude::*;
use smr_mapreduce::prelude::*;
use smr_mapreduce::HashPartitioner;

/// A mapper whose shape (fan-out, key space, key mixing) is generated per
/// test case.
struct RandomMapper {
    fanout: u32,
    key_mod: u32,
    mix: u32,
}

impl Mapper for RandomMapper {
    type InKey = u32;
    type InValue = u64;
    type OutKey = u32;
    type OutValue = u64;
    fn map(&self, k: &u32, v: &u64, out: &mut Emitter<u32, u64>) {
        for f in 0..self.fanout {
            let key = k
                .wrapping_mul(2_654_435_761)
                .wrapping_add(f.wrapping_mul(self.mix))
                % self.key_mod;
            out.emit(key, v.wrapping_add(u64::from(f)));
        }
    }
}

/// The associative fold a combiner/reducer pair applies.  Every op honours
/// the combiner contract (applying it any number of times, at any
/// granularity, leaves the final reduce output unchanged).
#[derive(Debug, Clone, Copy)]
enum Op {
    Sum,
    Max,
    Min,
    /// Keeps the first value in engine order — order-sensitive on purpose.
    First,
}

impl Op {
    fn from_index(i: u8) -> Op {
        match i % 4 {
            0 => Op::Sum,
            1 => Op::Max,
            2 => Op::Min,
            _ => Op::First,
        }
    }

    fn fold(self, values: &[u64]) -> u64 {
        match self {
            Op::Sum => values.iter().fold(0u64, |a, b| a.wrapping_add(*b)),
            Op::Max => values.iter().copied().max().unwrap_or(0),
            Op::Min => values.iter().copied().min().unwrap_or(0),
            Op::First => values.first().copied().unwrap_or(0),
        }
    }
}

struct OpCombiner(Op);
impl Combiner for OpCombiner {
    type Key = u32;
    type Value = u64;
    fn combine(&self, _k: &u32, vs: &[u64]) -> Vec<u64> {
        vec![self.0.fold(vs)]
    }
}

struct OpReducer(Op);
impl Reducer for OpReducer {
    type Key = u32;
    type InValue = u64;
    type OutKey = u32;
    type OutValue = u64;
    fn reduce(&self, k: &u32, vs: &[u64], out: &mut Emitter<u32, u64>) {
        out.emit(*k, self.0.fold(vs));
    }
}

struct Case {
    mapper: RandomMapper,
    op: Op,
    use_combiner: bool,
    reduce_tasks: usize,
    combine_buffer: usize,
    input: Vec<(u32, u64)>,
}

impl Case {
    fn run(&self, budget: Option<u64>, threads: usize, map_tasks: usize) -> Vec<(u32, u64)> {
        let job = Job::new(
            JobConfig::named("prop-model")
                .with_memory_budget(budget)
                .with_threads(threads)
                .with_map_tasks(map_tasks)
                .with_reduce_tasks(self.reduce_tasks)
                .with_combine_buffer_records(self.combine_buffer),
        );
        let result = if self.use_combiner {
            job.run_with_combiner(
                &self.mapper,
                &OpCombiner(self.op),
                &OpReducer(self.op),
                self.input.clone(),
            )
        } else {
            job.run(&self.mapper, &OpReducer(self.op), self.input.clone())
        };
        result.output
    }

    /// A sequential simulation of the MapReduce contract, independent of
    /// the engine: map every record in input order, partition in emission
    /// order, stable-sort each partition by key, group adjacent keys and
    /// reduce.  Combiners are deliberately *not* modelled: by their
    /// contract they must not change the final output, so one model covers
    /// every combining schedule (task-side, merge-side, spill-chunked).
    fn reference_model(&self) -> Vec<(u32, u64)> {
        let partitioner: HashPartitioner<u32> = HashPartitioner::new();
        let mut partitions: Vec<Vec<(u32, u64)>> =
            (0..self.reduce_tasks).map(|_| Vec::new()).collect();
        let mut emitter = Emitter::new();
        for (k, v) in &self.input {
            self.mapper.map(k, v, &mut emitter);
            emitter.drain_each(|key, value| {
                let p = partitioner.partition(&key, self.reduce_tasks);
                partitions[p].push((key, value));
            });
        }
        let reducer = OpReducer(self.op);
        let mut output = Vec::new();
        for mut partition in partitions {
            partition.sort_by_key(|(k, _)| *k);
            let mut i = 0;
            while i < partition.len() {
                let mut j = i + 1;
                while j < partition.len() && partition[j].0 == partition[i].0 {
                    j += 1;
                }
                let values: Vec<u64> = partition[i..j].iter().map(|(_, v)| *v).collect();
                let mut out = Emitter::new();
                reducer.reduce(&partition[i].0, &values, &mut out);
                output.extend(out.into_pairs());
                i = j;
            }
        }
        output
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn streaming_output_matches_the_sequential_model(
        input in proptest::collection::vec((0u32..40, 0u64..1_000), 0..70),
        fanout in 1u32..4,
        key_mod in 1u32..13,
        mix in 0u32..100,
        op_index in 0u8..4,
        combiner_coin in 0u32..2,
        reduce_tasks in 1usize..5,
        combine_buffer in 1usize..20,
    ) {
        let case = Case {
            mapper: RandomMapper { fanout, key_mod, mix },
            op: Op::from_index(op_index),
            use_combiner: combiner_coin == 1,
            reduce_tasks,
            combine_buffer,
            input,
        };
        let reference = case.reference_model();
        for threads in [1usize, 2, 8] {
            for map_tasks in [1usize, 7, 64] {
                let streaming = case.run(None, threads, map_tasks);
                prop_assert!(
                    streaming == reference,
                    "engine diverged from model (threads={threads} map_tasks={map_tasks}): {streaming:?} != {reference:?}"
                );
            }
        }
    }

    #[test]
    fn spilled_output_is_byte_identical_across_budgets_and_threads(
        input in proptest::collection::vec((0u32..40, 0u64..1_000), 0..70),
        fanout in 1u32..4,
        key_mod in 1u32..13,
        mix in 0u32..100,
        op_index in 0u8..4,
        combiner_coin in 0u32..2,
        reduce_tasks in 1usize..5,
        combine_buffer in 1usize..20,
    ) {
        let case = Case {
            mapper: RandomMapper { fanout, key_mod, mix },
            op: Op::from_index(op_index),
            use_combiner: combiner_coin == 1,
            reduce_tasks,
            combine_buffer,
            input,
        };
        let reference = case.reference_model();
        // 64 B is below two records per worker (a (u32, u64) pair is 16
        // bytes and the budget is split across threads), so nearly every
        // push spills; 4 KB spills on larger cases only; None never does.
        for budget in [Some(64u64), Some(4096), None] {
            for threads in [1usize, 8] {
                let output = case.run(budget, threads, 7);
                prop_assert!(
                    output == reference,
                    "budget={budget:?} threads={threads}: {output:?} != {reference:?}"
                );
            }
        }
    }

    #[test]
    fn merge_side_combining_never_increases_shuffle_volume(
        input in proptest::collection::vec((0u32..30, 0u64..1_000), 1..60),
        key_mod in 1u32..8,
        map_tasks in 2usize..8,
    ) {
        let mapper = RandomMapper { fanout: 2, key_mod, mix: 7 };
        let run = |use_combiner: bool| {
            let job = Job::new(
                JobConfig::named("prop-volume")
                    .with_memory_budget(None)
                    .with_threads(2)
                    .with_map_tasks(map_tasks)
                    .with_reduce_tasks(2),
            );
            if use_combiner {
                job.run_with_combiner(
                    &mapper,
                    &OpCombiner(Op::Sum),
                    &OpReducer(Op::Sum),
                    input.clone(),
                )
            } else {
                job.run(&mapper, &OpReducer(Op::Sum), input.clone())
            }
        };
        let plain = run(false);
        let combined = run(true);
        prop_assert_eq!(combined.output, plain.output);
        // Combining can only shrink what reaches reducers.
        prop_assert!(combined.metrics.shuffle_records <= plain.metrics.shuffle_records);
        // Both runs agree on what the map side produced.
        prop_assert_eq!(
            combined.metrics.map_output_records,
            plain.metrics.map_output_records
        );
    }
}
