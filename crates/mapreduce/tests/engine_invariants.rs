//! Property-based and integration tests of the MapReduce engine's
//! contract: the result of a job never depends on the number of map tasks,
//! reduce partitions or worker threads, combiners never change the output,
//! and the built-in counters are consistent with each other.

use proptest::prelude::*;
use smr_mapreduce::prelude::*;

/// Mapper that explodes each record into (key mod groups, value) pairs.
struct Spread {
    groups: u32,
}

impl Mapper for Spread {
    type InKey = u32;
    type InValue = u64;
    type OutKey = u32;
    type OutValue = u64;
    fn map(&self, k: &u32, v: &u64, out: &mut Emitter<u32, u64>) {
        out.emit(k % self.groups, *v);
        out.emit((k + 1) % self.groups, v / 2);
    }
}

struct Max;

impl Reducer for Max {
    type Key = u32;
    type InValue = u64;
    type OutKey = u32;
    type OutValue = u64;
    fn reduce(&self, k: &u32, vs: &[u64], out: &mut Emitter<u32, u64>) {
        out.emit(*k, vs.iter().copied().max().unwrap_or(0));
    }
}

struct MaxCombiner;

impl Combiner for MaxCombiner {
    type Key = u32;
    type Value = u64;
    fn combine(&self, _k: &u32, vs: &[u64]) -> Vec<u64> {
        vec![vs.iter().copied().max().unwrap_or(0)]
    }
}

fn reference(input: &[(u32, u64)], groups: u32) -> std::collections::BTreeMap<u32, u64> {
    let mut expected: std::collections::BTreeMap<u32, u64> = std::collections::BTreeMap::new();
    for (k, v) in input {
        let first = expected.entry(k % groups).or_insert(0);
        *first = (*first).max(*v);
        let second = expected.entry((k + 1) % groups).or_insert(0);
        *second = (*second).max(v / 2);
    }
    expected
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn output_is_independent_of_parallelism(
        input in proptest::collection::vec((0u32..50, 0u64..1_000), 0..80),
        groups in 1u32..8,
        map_tasks in 1usize..7,
        reduce_tasks in 1usize..6,
        threads in 1usize..5,
    ) {
        let job = Job::new(
            JobConfig::named("prop-parallelism")
                .with_map_tasks(map_tasks)
                .with_reduce_tasks(reduce_tasks)
                .with_threads(threads),
        );
        let result = job.run(&Spread { groups }, &Max, input.clone());
        let got: std::collections::BTreeMap<u32, u64> = result.output.into_iter().collect();
        prop_assert_eq!(got, reference(&input, groups));
    }

    #[test]
    fn combiner_never_changes_the_result(
        input in proptest::collection::vec((0u32..30, 0u64..1_000), 1..60),
        groups in 1u32..6,
    ) {
        let job = Job::new(JobConfig::named("prop-combiner").with_threads(2));
        let plain = job.run(&Spread { groups }, &Max, input.clone());
        let combined = job.run_with_combiner(&Spread { groups }, &MaxCombiner, &Max, input);
        let mut a = plain.output;
        let mut b = combined.output;
        a.sort();
        b.sort();
        prop_assert_eq!(a, b);
        // The combiner can only reduce (or keep) the shuffle volume.
        prop_assert!(combined.metrics.shuffle_records <= plain.metrics.shuffle_records);
    }

    #[test]
    fn builtin_counters_are_consistent(
        input in proptest::collection::vec((0u32..40, 0u64..100), 0..60),
        groups in 1u32..5,
    ) {
        let job = Job::new(JobConfig::named("prop-counters").with_threads(3));
        let result = job.run(&Spread { groups }, &Max, input.clone());
        let m = &result.metrics;
        prop_assert_eq!(m.map_input_records, input.len() as u64);
        // Spread emits exactly two records per input record.
        prop_assert_eq!(m.map_output_records, 2 * input.len() as u64);
        // Without a combiner everything emitted is shuffled.
        prop_assert_eq!(m.shuffle_records, m.map_output_records);
        // Max emits one record per group; groups cannot exceed the key space.
        prop_assert_eq!(m.reduce_output_records, m.reduce_input_groups);
        prop_assert!(m.reduce_input_groups <= groups as u64);
        prop_assert_eq!(m.reduce_output_records as usize, result.output.len());
    }
}

#[test]
fn store_round_trips_records_between_rounds() {
    // Simulates the per-round persistence pattern the iterative matching
    // algorithms use: write the reduce output, read it back as the next
    // round's input.
    let store: KvStore<(u32, u64)> = KvStore::new();
    let job = Job::new(JobConfig::named("store-roundtrip").with_threads(2));
    let round0 = job.run(&Spread { groups: 3 }, &Max, vec![(0, 10), (1, 20), (5, 3)]);
    store.write("round-0", round0.output.clone());
    let next_input: Vec<(u32, u64)> = store.read("round-0").as_ref().clone();
    assert_eq!(next_input.len(), round0.output.len());
    let round1 = job.run(&Spread { groups: 3 }, &Max, next_input);
    assert!(!round1.output.is_empty());
}
