//! Offline stand-in for `crossbeam`.
//!
//! Only [`thread::scope`] is provided — the one crossbeam API the MapReduce
//! executor uses — implemented on top of [`std::thread::scope`] (stable
//! since Rust 1.63, which is what made crossbeam's scoped threads optional
//! in the first place).  The scope handle is passed *by value* (it is
//! `Copy`) rather than by reference as in crossbeam; every call site uses
//! `|scope| …` / `|_| …` closures, which accept either.  Replace with the
//! real crate once a cargo registry is reachable.

/// Scoped threads (`crossbeam::thread`).
pub mod thread {
    use std::any::Any;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// A copyable handle for spawning threads inside a [`scope`] call.
    #[derive(Clone, Copy)]
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread.  The closure receives the scope handle
        /// (crossbeam-style) so nested spawns remain possible.
        pub fn spawn<F, T>(self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            self.inner.spawn(move || f(self))
        }
    }

    /// Runs `f` with a scope in which borrowed-data threads can be spawned;
    /// all spawned threads are joined before `scope` returns.  Like
    /// `crossbeam::thread::scope`: a panic in a *spawned thread* is
    /// returned as `Err` with the panic payload, while a panic in the
    /// scope body `f` itself propagates to the caller (after the spawned
    /// threads have been joined).
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(Scope<'scope, 'env>) -> R,
    {
        // The inner catch distinguishes a panic in `f` from a panic in a
        // spawned thread: std::thread::scope re-raises child panics itself
        // when the scope exits (caught by the outer catch), so anything the
        // inner catch sees came from the body.  If both panic, the child
        // panic wins the report — acceptable for a shim.
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| catch_unwind(AssertUnwindSafe(|| f(Scope { inner: s }))))
        }));
        match outcome {
            Ok(Ok(value)) => Ok(value),
            Ok(Err(body_panic)) => std::panic::resume_unwind(body_panic),
            Err(child_panic) => Err(child_panic),
        }
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_joins_all_threads() {
        let counter = AtomicUsize::new(0);
        super::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        })
        .expect("no thread panicked");
        assert_eq!(counter.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn nested_spawn_compiles_and_runs() {
        let counter = AtomicUsize::new(0);
        super::thread::scope(|s| {
            s.spawn(|inner| {
                inner.spawn(|_| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            });
        })
        .expect("no thread panicked");
        assert_eq!(counter.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn panics_surface_as_err() {
        let result = super::thread::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(result.is_err());
    }

    #[test]
    fn body_panic_propagates_to_the_caller() {
        let caught = std::panic::catch_unwind(|| {
            let _ = super::thread::scope(|_| panic!("body boom"));
        });
        assert!(caught.is_err(), "a panic in the scope body must propagate");
    }
}
