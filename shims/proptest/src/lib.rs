//! Offline stand-in for `proptest`.
//!
//! The workspace is built without access to crates.io, so this crate
//! reimplements the slice of proptest the test suites use: the
//! [`strategy::Strategy`] trait with `prop_map`/`prop_flat_map`, range and
//! tuple strategies, [`collection::vec`], [`sample::Index`],
//! [`arbitrary::any`], and the [`proptest!`]/[`prop_assert!`]/
//! [`prop_assert_eq!`] macros.
//!
//! Differences from the real crate, acceptable for deterministic CI runs:
//!
//! * no shrinking — a failing case reports its case number and seed instead
//!   of a minimized input,
//! * generation is fully deterministic (the per-case seed is derived from
//!   the case index), so test runs are reproducible by construction.
//!
//! Replace with the real crate once a cargo registry is reachable.

pub mod test_runner {
    //! Config, error and RNG types for generated test cases.

    use rand::{Rng as _, SeedableRng as _};

    /// Configuration for a `proptest!` block (`proptest::test_runner::Config`).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each test runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Why a single generated case failed.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// An assertion in the test body failed.
        Fail(String),
    }

    impl TestCaseError {
        /// Builds a failure with the given message.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError::Fail(message.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "{m}"),
            }
        }
    }

    impl std::error::Error for TestCaseError {}

    /// The RNG driving value generation for one test case.
    #[derive(Debug, Clone)]
    pub struct TestRng(rand::rngs::StdRng);

    impl TestRng {
        /// A deterministic RNG for the given case index.
        pub fn deterministic(case: u64) -> Self {
            Self::deterministic_for("", case)
        }

        /// A deterministic RNG for the given test name and case index, so
        /// that different property tests over the same strategy shapes see
        /// different value streams.
        pub fn deterministic_for(test_name: &str, case: u64) -> Self {
            // FNV-1a over the test name, mixed with the case index.
            let mut hash = 0xCBF2_9CE4_8422_2325u64;
            for byte in test_name.bytes() {
                hash = (hash ^ u64::from(byte)).wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng(rand::rngs::StdRng::seed_from_u64(
                hash ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            ))
        }

        /// Next 64 uniformly random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }

        /// Uniform sample from a range (delegates to the `rand` shim).
        pub fn gen_range<T, R: rand::SampleRange<T>>(&mut self, range: R) -> T {
            self.0.gen_range(range)
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and its combinators.

    use crate::test_runner::TestRng;

    /// A recipe for generating random values of type [`Strategy::Value`].
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }

        /// Generates a value, then generates from the strategy `f` builds
        /// out of it (dependent generation).
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { source: self, f }
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        source: S,
        f: F,
    }

    impl<S, T, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        T: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T::Value;
        fn generate(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.source.generate(rng)).generate(rng)
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    range_strategy!(u8, u16, u32, u64, usize, f64);

    macro_rules! tuple_strategy {
        ($($S:ident => $idx:tt),+) => {
            impl<$($S: Strategy),+> Strategy for ($($S,)+) {
                type Value = ($($S::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A => 0);
    tuple_strategy!(A => 0, B => 1);
    tuple_strategy!(A => 0, B => 1, C => 2);
    tuple_strategy!(A => 0, B => 1, C => 2, D => 3);
    tuple_strategy!(A => 0, B => 1, C => 2, D => 3, E => 4);
    tuple_strategy!(A => 0, B => 1, C => 2, D => 3, E => 4, F => 5);
}

pub mod collection {
    //! Strategies for collections.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// An inclusive-of-min, exclusive-of-max length range for [`vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec length range");
            SizeRange {
                min: r.start,
                max: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end() + 1,
            }
        }
    }

    /// Generates `Vec`s whose elements come from `element` and whose length
    /// is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.min + 1 >= self.size.max {
                self.size.min
            } else {
                rng.gen_range(self.size.min..self.size.max)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    //! Sampling helpers.

    use crate::arbitrary::Arbitrary;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A position into a collection whose length is only known at use time
    /// (`proptest::sample::Index`).
    #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
    pub struct Index(u64);

    impl Index {
        /// Projects this index onto a collection of length `len`.
        ///
        /// # Panics
        /// Panics if `len` is zero.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "cannot index an empty collection");
            (self.0 % len as u64) as usize
        }
    }

    /// Generates uniformly random [`Index`] values.
    #[derive(Debug, Clone, Copy)]
    pub struct IndexStrategy;

    impl Strategy for IndexStrategy {
        type Value = Index;
        fn generate(&self, rng: &mut TestRng) -> Index {
            Index(rng.next_u64())
        }
    }

    impl Arbitrary for Index {
        type Strategy = IndexStrategy;
        fn arbitrary() -> IndexStrategy {
            IndexStrategy
        }
    }
}

pub mod arbitrary {
    //! The [`Arbitrary`] trait and [`any`].

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical strategy generating arbitrary values.
    pub trait Arbitrary: Sized {
        /// The canonical strategy for this type.
        type Strategy: Strategy<Value = Self>;

        /// Returns the canonical strategy.
        fn arbitrary() -> Self::Strategy;
    }

    /// The canonical strategy for `T` (`proptest::prelude::any`).
    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }

    /// Full-range strategy for primitives.
    #[derive(Debug, Clone, Copy)]
    pub struct Primitive<T>(std::marker::PhantomData<T>);

    macro_rules! primitive_arbitrary {
        ($($t:ty => $gen:expr),+ $(,)?) => {$(
            impl Strategy for Primitive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let f: fn(&mut TestRng) -> $t = $gen;
                    f(rng)
                }
            }
            impl Arbitrary for $t {
                type Strategy = Primitive<$t>;
                fn arbitrary() -> Primitive<$t> {
                    Primitive(std::marker::PhantomData)
                }
            }
        )+};
    }

    primitive_arbitrary! {
        bool => |rng| rng.next_u64() & 1 == 1,
        u32 => |rng| (rng.next_u64() >> 32) as u32,
        u64 => |rng| rng.next_u64(),
        usize => |rng| rng.next_u64() as usize,
        f64 => |rng| (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64),
    }
}

pub mod prelude {
    //! The glob-import surface (`use proptest::prelude::*`).

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Asserts a condition inside a `proptest!` body, failing the current case
/// (with an optional formatted message) instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)*),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: `{:?} == {:?}` ({} == {})",
                    left,
                    right,
                    stringify!($left),
                    stringify!($right),
                ),
            ));
        }
    }};
}

/// Declares property tests: each `fn name(pat in strategy, …) { body }`
/// becomes a `#[test]` that runs the body over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($config:expr)
      $( $(#[$meta:meta])* fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                for case in 0..config.cases {
                    let mut rng = $crate::test_runner::TestRng::deterministic_for(
                        concat!(module_path!(), "::", stringify!($name)),
                        case as u64,
                    );
                    $(
                        let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);
                    )+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || {
                            $body
                            #[allow(unreachable_code)]
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(error) = outcome {
                        ::std::panic!("proptest case {case} failed: {error}");
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn vec_strategy_respects_length_bounds() {
        let strat = crate::collection::vec(0u32..10, 3..7);
        let mut rng = crate::test_runner::TestRng::deterministic(0);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((3..7).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn flat_map_and_just_compose(
            v in (1usize..5).prop_flat_map(|n| {
                (Just(n), crate::collection::vec(0u64..100, n))
            })
        ) {
            let (n, items) = v;
            prop_assert_eq!(items.len(), n);
        }

        #[test]
        fn index_projects_in_bounds(
            idx in any::<crate::sample::Index>(),
            len in 1usize..50,
        ) {
            prop_assert!(idx.index(len) < len);
        }

        #[test]
        fn early_return_is_allowed(n in 0u32..10) {
            if n > 100 {
                return Ok(());
            }
            prop_assert!(n < 10, "n = {} out of range", n);
        }
    }
}
