//! Offline stand-in for the `rand` crate (0.8-style API).
//!
//! The workspace is built without access to crates.io, so this crate
//! reimplements the slice of `rand` the codebase actually uses:
//!
//! * [`Rng`] with `gen`, `gen_bool` and `gen_range` over the primitive
//!   ranges the generators draw from,
//! * [`SeedableRng::seed_from_u64`] and [`rngs::StdRng`], backed by
//!   xoshiro256++ seeded through SplitMix64 (deterministic across
//!   platforms, which is all the experiments need),
//! * [`seq::SliceRandom::shuffle`] (Fisher–Yates).
//!
//! Replace with the real crate once a cargo registry is reachable.

use std::ops::{Range, RangeInclusive};

/// A source of randomness: the subset of `rand::RngCore` + `rand::Rng`
/// used by the workspace.
pub trait Rng {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Samples a value of a primitive type from its "standard" distribution
    /// (`f64` in `[0, 1)`, integers uniform over their full range).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }

    /// Samples uniformly from a range (half-open or inclusive).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

/// Types samplable from the standard distribution (`rand::distributions::Standard`).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: Rng>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges a value can be drawn from uniformly (`rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value from `rng`.
    fn sample_from<R: Rng>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return start + (rng.next_u64() as $t);
                }
                start + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: Rng>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let u: f64 = f64::sample(rng);
        let x = self.start + u * (self.end - self.start);
        // u < 1 but rounding can still land on `end`; keep the half-open
        // contract of rand's gen_range.
        if x >= self.end {
            self.end.next_down().max(self.start)
        } else {
            x
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: Rng>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample from empty range");
        let u: f64 = f64::sample(rng);
        start + u * (end - start)
    }
}

/// Seedable generators (`rand::SeedableRng`, reduced to the one constructor
/// the workspace uses).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, expanding it with SplitMix64.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators (`rand::rngs`).
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// (The real `rand::rngs::StdRng` is a ChaCha block cipher; the
    /// experiments only rely on determinism and reasonable statistical
    /// quality, which xoshiro256++ provides at a fraction of the code.)
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers (`rand::seq`).
pub mod seq {
    use super::Rng;

    /// Shuffling and random selection on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng>(&mut self, rng: &mut R);

        /// Returns a uniformly random element, or `None` if empty.
        fn choose<'a, R: Rng>(&'a self, rng: &mut R) -> Option<&'a Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<'a, R: Rng>(&'a self, rng: &mut R) -> Option<&'a T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(rng.next_u64() % self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn f64_samples_lie_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&y));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[rng.gen_range(0usize..8)] += 1;
        }
        for &c in &counts {
            assert!(
                (9_000..11_000).contains(&c),
                "bucket count {c} far from 10k"
            );
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 100-element shuffle should move something");
    }
}
