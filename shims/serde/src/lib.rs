//! Offline stand-in for `serde`.
//!
//! Provides the `Serialize`/`Deserialize` names in both the trait and the
//! derive-macro namespaces, exactly like `serde` with the `derive` feature.
//! The traits are empty markers and the derives expand to nothing: the
//! codebase only tags types with `#[derive(Serialize, Deserialize)]` and
//! never calls into a serializer.  Replace with the real crate once network
//! access to a cargo registry is available.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
