//! Offline stand-in for `parking_lot`.
//!
//! Wraps the standard-library locks behind `parking_lot`'s non-poisoning
//! API (`lock()`/`read()`/`write()` return guards directly).  Poisoning is
//! handled by recovering the inner guard: a panic that poisons a lock has
//! already unwound past the engine's `.expect` on the worker scope, so
//! continuing with the recovered data matches `parking_lot` semantics
//! closely enough for this workspace.  Replace with the real crate once a
//! cargo registry is reachable.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Non-poisoning wrapper around [`std::sync::Mutex`].
#[derive(Debug, Default)]
pub struct Mutex<T>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Consumes the mutex and returns the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

/// Non-poisoning wrapper around [`std::sync::RwLock`].
#[derive(Debug, Default)]
pub struct RwLock<T>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a reader-writer lock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0
            .write()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Consumes the lock and returns the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::{Mutex, RwLock};

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }
}
