//! Offline stand-in for `criterion`.
//!
//! Implements the API surface the workspace's benches use — groups,
//! `bench_function` / `bench_with_input`, [`BenchmarkId`], the
//! [`criterion_group!`]/[`criterion_main!`] macros and `Bencher::iter` —
//! with a deliberately simple measurement loop: run the closure for the
//! configured sample count (bounded by the measurement time) and print the
//! mean wall-clock time per iteration.  No statistics, no HTML reports.
//! Replace with the real crate once a cargo registry is reachable.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// The benchmark driver handed to every `criterion_group!` function.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_secs(2),
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks, inheriting this
    /// driver's sampling settings.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("benchmark group: {name}");
        BenchmarkGroup {
            _parent: std::marker::PhantomData,
            name,
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_bench(
            &id.to_string(),
            self.sample_size,
            self.measurement_time,
            &mut f,
        );
        self
    }
}

/// A group of benchmarks sharing sampling settings.
pub struct BenchmarkGroup<'a> {
    // Tied to the parent `Criterion`'s borrow like the real API, so a group
    // must be finished before the next one starts.
    _parent: std::marker::PhantomData<&'a mut Criterion>,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Sets the warm-up time (accepted for API compatibility; the shim does
    /// not warm up).
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Caps the total measurement time per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Benchmarks `f` under the given id.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id);
        run_bench(&label, self.sample_size, self.measurement_time, &mut f);
        self
    }

    /// Benchmarks `f`, passing it `input` (criterion's parameterized form).
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_bench(&label, self.sample_size, self.measurement_time, &mut |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifier of one benchmark: a function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// An id for `function` measured at `parameter`.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: Some(parameter.to_string()),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.parameter {
            Some(p) => write!(f, "{}/{}", self.function, p),
            None => write!(f, "{}", self.function),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(function: &str) -> Self {
        BenchmarkId {
            function: function.to_string(),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(function: String) -> Self {
        BenchmarkId {
            function,
            parameter: None,
        }
    }
}

/// Runs the timing loop for one benchmark closure.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, once per recorded iteration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        std_black_box(routine());
        self.elapsed += start.elapsed();
        self.iterations += 1;
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(
    label: &str,
    sample_size: usize,
    measurement_time: Duration,
    f: &mut F,
) {
    let mut bencher = Bencher {
        iterations: 0,
        elapsed: Duration::ZERO,
    };
    let started = Instant::now();
    for _ in 0..sample_size.max(1) {
        f(&mut bencher);
        if started.elapsed() > measurement_time {
            break;
        }
    }
    if bencher.iterations > 0 {
        let mean = bencher.elapsed / bencher.iterations as u32;
        println!(
            "  {label}: {mean:?} mean over {} iterations",
            bencher.iterations
        );
    } else {
        println!("  {label}: no iterations recorded");
    }
}

/// Bundles benchmark functions into one group runner (`criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($function:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $function(&mut criterion); )+
        }
    };
}

/// Generates `main` running the given groups (`criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim-self-test");
        group.sample_size(3);
        group.measurement_time(Duration::from_millis(50));
        group.bench_function("sum", |b| b.iter(|| (0..1000u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("sum_to", 500u64), &500u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    criterion_group!(shim_self_test, sample_bench);

    #[test]
    fn group_runner_executes() {
        shim_self_test();
    }
}
