//! Offline stand-in for `serde_derive`.
//!
//! The workspace is built in an environment without access to crates.io, so
//! the real `serde`/`serde_derive` crates cannot be fetched.  The codebase
//! only uses `#[derive(Serialize, Deserialize)]` as forward-looking metadata
//! on plain data types — no code path serializes anything yet — so the
//! derives can expand to nothing.  When network access is available, delete
//! the `shims/` crates and point `[workspace.dependencies]` at crates.io.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
