//! Quickstart: build a small item–consumer graph by hand, assign
//! capacities, and run the three MapReduce matching algorithms.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use social_content_matching::graph::{Capacities, GraphBuilder};
use social_content_matching::mapreduce::FlowContext;
use social_content_matching::matching::{
    greedy_matching, optimal_matching, GreedyMr, GreedyMrConfig, StackMr, StackMrConfig,
};

fn main() {
    // A tiny "featured item" instance: 4 photos, 5 users, relevance scores
    // from some upstream recommender.
    let mut builder = GraphBuilder::new();
    let photos: Vec<_> = (0..4)
        .map(|i| builder.add_item(format!("photo-{i}")))
        .collect();
    let users: Vec<_> = (0..5)
        .map(|i| builder.add_consumer(format!("user-{i}")))
        .collect();
    let scores = [
        (0, 0, 0.9),
        (0, 1, 0.6),
        (1, 1, 0.8),
        (1, 2, 0.5),
        (2, 2, 0.7),
        (2, 3, 0.4),
        (3, 3, 0.95),
        (3, 4, 0.55),
        (0, 4, 0.3),
    ];
    for &(p, u, w) in &scores {
        builder.add_edge(photos[p], users[u], w);
    }
    let graph = builder.build();

    // Every photo may be shown to at most 2 users, every user sees at most
    // 1 featured photo.
    let caps = Capacities::uniform(&graph, 2, 1);

    println!(
        "instance: {} photos, {} users, {} candidate edges",
        graph.num_items(),
        graph.num_consumers(),
        graph.num_edges()
    );

    // The exact optimum (feasible for small instances only).
    let exact = optimal_matching(&graph, &caps);
    println!("exact optimum      : value {:.2}", exact.value(&graph));

    // Centralized greedy (½-approximation).
    let greedy = greedy_matching(&graph, &caps);
    println!("centralized greedy : value {:.2}", greedy.value(&graph));

    // GreedyMR: the MapReduce greedy.  All jobs of a run go through one
    // FlowContext; inter-round state lives in its disk-backed side store.
    let greedy_mr =
        GreedyMr::new(GreedyMrConfig::default()).run(&graph, &caps, &FlowContext::named("greedy"));
    println!(
        "GreedyMR           : value {:.2}  ({} MapReduce rounds, feasible: {})",
        greedy_mr.value(&graph),
        greedy_mr.rounds,
        greedy_mr.matching.is_feasible(&graph, &caps)
    );

    // StackMR: the primal-dual stack algorithm (ε = 1).
    let stack_mr =
        StackMr::new(StackMrConfig::default()).run(&graph, &caps, &FlowContext::named("stack"));
    println!(
        "StackMR            : value {:.2}  ({} MapReduce jobs, avg violation {:.2}%)",
        stack_mr.value(&graph),
        stack_mr.mr_jobs,
        100.0 * stack_mr.average_violation(&graph, &caps)
    );

    println!("\nedges delivered by GreedyMR:");
    for e in greedy_mr.matching.edges() {
        let edge = graph.edge(e);
        println!(
            "  {} -> {}   (relevance {:.2})",
            graph.item_label(edge.item),
            graph.consumer_label(edge.consumer),
            edge.weight
        );
    }
}
