//! Sharded pipeline: run the full matching pipeline across worker
//! *processes* and check the result byte-identical to the in-process run.
//!
//! ```text
//! cargo run --release --example sharded_pipeline
//! ```
//!
//! `MatchingPipeline::process_shards(n)` wraps the run in an
//! `smr_distrib` session: a coordinator re-invokes this example as n
//! worker processes, each maps its slice of every job's task space, and
//! sorted runs + checksummed manifests in a shared session directory are
//! the only channel between them (see docs/distrib.md).  The workers
//! replay `main` from the top — which is why everything here is
//! deterministic — and exit once their session ends, so only the
//! coordinator prints.

use social_content_matching::datagen::FlickrGenerator;
use social_content_matching::distrib::{is_worker_process, last_session_stats};
use social_content_matching::matching::AlgorithmKind;
use social_content_matching::MatchingPipeline;

fn main() {
    let dataset = FlickrGenerator {
        num_photos: 60,
        num_users: 20,
        vocabulary: 80,
        seed: 42,
        ..FlickrGenerator::default()
    }
    .generate();

    let pipeline = |shards: usize| {
        let p = MatchingPipeline::new(dataset.clone())
            .sigma(0.12)
            .algorithm(AlgorithmKind::GreedyMr);
        if shards > 0 {
            p.process_shards(shards)
        } else {
            p
        }
    };

    let local = pipeline(0).run();
    for shards in [2, 4] {
        let sharded = pipeline(shards).run();
        // Workers replay this loop inline for sessions before their own
        // and die inside their own, so past this point in an iteration we
        // are either the coordinator or a worker catching up — and the
        // results agree bit for bit either way.
        assert_eq!(local.graph.edges(), sharded.graph.edges());
        assert_eq!(local.matching.matching, sharded.matching.matching);
        if !is_worker_process() {
            let stats = last_session_stats().expect("session finished");
            println!(
                "{} shards: {} edges, {} matched, value {:.2} — identical to local \
                 ({} sharded jobs, {} respawns)",
                shards,
                sharded.graph.num_edges(),
                sharded.matching.matching.len(),
                sharded.matching.value(&sharded.graph),
                stats.jobs,
                stats.respawns,
            );
        }
    }
    if !is_worker_process() {
        println!("in-process and multi-process runs are byte-identical");
    }
}
