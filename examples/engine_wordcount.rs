//! Using the MapReduce substrate directly: the classic word-count job,
//! with and without a combiner, showing the counters the engine exposes.
//!
//! The matching algorithms of this workspace are written against exactly
//! this engine; this example is the smallest possible end-to-end tour of
//! its API (mapper, reducer, combiner, job configuration, metrics).
//!
//! ```text
//! cargo run --example engine_wordcount
//! ```

use social_content_matching::mapreduce::prelude::*;

struct Tokenize;

impl Mapper for Tokenize {
    type InKey = usize;
    type InValue = String;
    type OutKey = String;
    type OutValue = u64;

    fn map(&self, _doc: &usize, text: &String, out: &mut Emitter<String, u64>) {
        for word in text.split_whitespace() {
            out.emit(word.to_lowercase(), 1);
        }
    }
}

struct Sum;

impl Reducer for Sum {
    type Key = String;
    type InValue = u64;
    type OutKey = String;
    type OutValue = u64;

    fn reduce(&self, word: &String, counts: &[u64], out: &mut Emitter<String, u64>) {
        out.emit(word.clone(), counts.iter().sum());
    }
}

struct SumCombiner;

impl Combiner for SumCombiner {
    type Key = String;
    type Value = u64;

    fn combine(&self, _word: &String, counts: &[u64]) -> Vec<u64> {
        vec![counts.iter().sum()]
    }
}

fn main() {
    let documents: Vec<(usize, String)> = vec![
        (0, "the quick brown fox jumps over the lazy dog".to_string()),
        (1, "the dog barks and the fox runs".to_string()),
        (2, "quick quick slow the fox the fox".to_string()),
    ];

    let job = Job::new(
        JobConfig::named("wordcount")
            .with_map_tasks(3)
            .with_reduce_tasks(2),
    );

    let plain = job.run(&Tokenize, &Sum, documents.clone());
    let combined = job.run_with_combiner(&Tokenize, &SumCombiner, &Sum, documents);

    println!("top words:");
    let mut counts = combined.output.clone();
    counts.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    for (word, count) in counts.iter().take(5) {
        println!("  {word:<8} {count}");
    }

    println!(
        "\nshuffle volume without combiner: {} records",
        plain.metrics.shuffle_records
    );
    println!(
        "shuffle volume with combiner   : {} records ({:.0}% saved)",
        combined.metrics.shuffle_records,
        100.0 * combined.metrics.combine_reduction()
    );
    println!(
        "map tasks: {}, reduce tasks: {}, wall time: {:?}",
        combined.metrics.map_tasks,
        combined.metrics.reduce_tasks,
        combined.metrics.timings.total()
    );
}
