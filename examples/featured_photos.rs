//! The paper's motivating flickr scenario, end to end, through the
//! [`MatchingPipeline`] builder:
//!
//! 1. generate a synthetic photo-sharing dataset (photos with tags, users
//!    with interests, power-law activity and favourites),
//! 2. `build_graph()` runs the MapReduce prefix-filtering similarity join
//!    (threshold σ) **once** and derives capacities with the paper's
//!    formulas (`b(u) = α·n(u)`, favourite-proportional photo capacities),
//! 3. the three matching algorithms (GreedyMR, StackMR, StackGreedyMR)
//!    then run over that one candidate graph — each through its own
//!    `FlowContext`, so each algorithm's `FlowReport` covers exactly its
//!    own MapReduce jobs.
//!
//! ```text
//! cargo run --release --example featured_photos
//! ```

use social_content_matching::datagen::FlickrGenerator;
use social_content_matching::mapreduce::{FlowContext, JobConfig};
use social_content_matching::matching::runner::RunnerConfig;
use social_content_matching::matching::{
    run_algorithm, AlgorithmKind, GreedyMrConfig, StackMrConfig,
};
use social_content_matching::text::TokenizerConfig;
use social_content_matching::MatchingPipeline;

fn main() {
    // 1. Synthetic flickr-like dataset.
    let dataset = FlickrGenerator {
        num_photos: 400,
        num_users: 100,
        seed: 7,
        ..FlickrGenerator::default()
    }
    .generate();
    println!(
        "dataset: {} photos, {} users",
        dataset.num_items(),
        dataset.num_consumers()
    );

    // 2. One pipeline pass up to the candidate graph: similarity join
    //    (two MapReduce jobs) and capacities.
    let sigma = 0.15;
    let candidate = MatchingPipeline::new(dataset)
        .tokenizer(TokenizerConfig::tags_only())
        .sigma(sigma)
        .alpha(1.0)
        .build_graph();
    println!(
        "similarity join (sigma={sigma}): {} candidate edges from {} candidates \
         ({} pruned cheap, {} verified exact), {} MapReduce jobs",
        candidate.graph.num_edges(),
        candidate.candidate_pairs,
        candidate.candidates_pruned,
        candidate.verify_exact,
        candidate.simjoin_jobs,
    );
    println!(
        "capacities: total user budget {}, total photo budget {}",
        candidate.capacities.total_consumer_capacity(),
        candidate.capacities.total_item_capacity()
    );

    // 3. The three MapReduce matching algorithms over the shared graph.
    let runner_config = RunnerConfig {
        greedy_mr: GreedyMrConfig::default(),
        stack_mr: StackMrConfig::default().with_seed(7),
    };
    let runs: Vec<_> = [
        AlgorithmKind::GreedyMr,
        AlgorithmKind::StackMr,
        AlgorithmKind::StackGreedyMr,
    ]
    .into_iter()
    .map(|algorithm| {
        let flow = FlowContext::new(JobConfig::named(algorithm.name().to_lowercase()));
        let run = run_algorithm(
            algorithm,
            &candidate.graph,
            &candidate.capacities,
            &runner_config,
            &flow,
        );
        (run, flow.report())
    })
    .collect();

    println!(
        "\n{:<16} {:>10} {:>10} {:>12} {:>14}",
        "algorithm", "value", "MR jobs", "shuffled", "avg violation"
    );
    for (run, report) in &runs {
        println!(
            "{:<16} {:>10.2} {:>10} {:>12} {:>13.2}%",
            run.algorithm.name(),
            run.value(&candidate.graph),
            report.num_jobs(),
            report.total_shuffled_records(),
            100.0 * run.average_violation(&candidate.graph, &candidate.capacities)
        );
    }

    // The paper's qualitative findings, reproduced here: GreedyMR wins on
    // value, the stack algorithms keep violations tiny and their round
    // count nearly flat in the number of edges.
    let (greedy_mr, greedy_report) = &runs[0];
    assert_eq!(greedy_mr.algorithm, AlgorithmKind::GreedyMr);
    assert!(greedy_mr
        .matching
        .is_feasible(&candidate.graph, &candidate.capacities));
    assert_eq!(greedy_report.num_jobs(), greedy_mr.mr_jobs);
    println!("\nGreedyMR solution is feasible; StackMR violations are bounded by (1+eps).");
}
