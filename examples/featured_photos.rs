//! The paper's motivating flickr scenario, end to end:
//!
//! 1. generate a synthetic photo-sharing dataset (photos with tags, users
//!    with interests, power-law activity and favourites),
//! 2. compute the candidate edges with the MapReduce prefix-filtering
//!    similarity join (threshold σ),
//! 3. derive capacities with the paper's formulas (`b(u) = α·n(u)`,
//!    favourite-proportional photo capacities),
//! 4. run GreedyMR, StackMR and StackGreedyMR and compare value,
//!    iterations and capacity violations.
//!
//! ```text
//! cargo run --release --example featured_photos
//! ```

use social_content_matching::datagen::FlickrGenerator;
use social_content_matching::matching::{
    AlgorithmKind, GreedyMr, GreedyMrConfig, StackMr, StackMrConfig,
};
use social_content_matching::simjoin::{mapreduce_similarity_join, SimJoinConfig};
use social_content_matching::text::{Corpus, TokenizerConfig};

fn main() {
    // 1. Synthetic flickr-like dataset.
    let dataset = FlickrGenerator {
        num_photos: 400,
        num_users: 100,
        seed: 7,
        ..FlickrGenerator::default()
    }
    .generate();
    println!(
        "dataset: {} photos, {} users",
        dataset.num_items(),
        dataset.num_consumers()
    );

    // 2. Candidate edges via the MapReduce similarity join.
    let photos = Corpus::build(dataset.items.clone(), &TokenizerConfig::tags_only());
    let users = Corpus::build(dataset.consumers.clone(), &TokenizerConfig::tags_only());
    let sigma = 0.15;
    let join = mapreduce_similarity_join(
        &photos,
        &users,
        &SimJoinConfig::default().with_threshold(sigma),
    );
    let graph = join.graph;
    println!(
        "similarity join (sigma={sigma}): {} candidate edges, {} candidate pairs verified, 2 MapReduce jobs",
        graph.num_edges(),
        join.candidate_pairs,
    );

    // 3. Capacities: user capacity proportional to activity, photo capacity
    //    proportional to favourites (alpha = 1).
    let caps = dataset.capacities(1.0);
    println!(
        "capacities: total user budget {}, total photo budget {}",
        caps.total_consumer_capacity(),
        caps.total_item_capacity()
    );

    // 4. The three MapReduce matching algorithms.
    let greedy_mr = GreedyMr::new(GreedyMrConfig::default()).run(&graph, &caps);
    let stack_mr = StackMr::new(StackMrConfig::default().with_seed(7)).run(&graph, &caps);
    let stack_greedy =
        StackMr::new(StackMrConfig::default().with_seed(7).stack_greedy()).run(&graph, &caps);

    println!(
        "\n{:<16} {:>10} {:>10} {:>12} {:>14}",
        "algorithm", "value", "MR jobs", "shuffled", "avg violation"
    );
    for run in [&greedy_mr, &stack_mr, &stack_greedy] {
        println!(
            "{:<16} {:>10.2} {:>10} {:>12} {:>13.2}%",
            run.algorithm.name(),
            run.value(&graph),
            run.mr_jobs,
            run.total_shuffled_records(),
            100.0 * run.average_violation(&graph, &caps)
        );
    }

    // The paper's qualitative findings, reproduced here: GreedyMR wins on
    // value, the stack algorithms keep violations tiny and their round
    // count nearly flat in the number of edges.
    assert_eq!(greedy_mr.algorithm, AlgorithmKind::GreedyMr);
    assert!(greedy_mr.matching.is_feasible(&graph, &caps));
    println!("\nGreedyMR solution is feasible; StackMR violations are bounded by (1+eps).");
}
