//! The Yahoo! Answers scenario: route open questions to the users most
//! likely to answer them, and demonstrate the *any-time* property of
//! GreedyMR (Figure 5 of the paper) — the algorithm can be stopped at any
//! round and still returns a feasible matching whose value is already close
//! to the final one.
//!
//! ```text
//! cargo run --release --example question_routing
//! ```

use social_content_matching::datagen::AnswersGenerator;
use social_content_matching::matching::{GreedyMr, GreedyMrConfig};
use social_content_matching::simjoin::{mapreduce_similarity_join, SimJoinConfig};
use social_content_matching::text::{Corpus, TokenizerConfig};

fn main() {
    // Synthetic question-answering dataset: questions and user profiles
    // over a topical vocabulary, activity = answers written.
    let dataset = AnswersGenerator {
        num_questions: 500,
        num_users: 150,
        seed: 11,
        ..AnswersGenerator::default()
    }
    .generate();
    println!(
        "dataset: {} open questions, {} users",
        dataset.num_items(),
        dataset.num_consumers()
    );

    // Candidate edges: questions similar to a user's answering history.
    let questions = Corpus::build(dataset.items.clone(), &TokenizerConfig::default());
    let users = Corpus::build(dataset.consumers.clone(), &TokenizerConfig::default());
    let join = mapreduce_similarity_join(
        &questions,
        &users,
        &SimJoinConfig::default().with_threshold(0.12),
    );
    let graph = join.graph;
    println!("candidate edges: {}", graph.num_edges());

    // Uniform question capacities, activity-proportional user capacities.
    let caps = dataset.capacities(1.0);

    // Full GreedyMR run, recording the per-round value trace.
    let full = GreedyMr::new(GreedyMrConfig::default()).run(&graph, &caps);
    let final_value = full.value(&graph);
    println!(
        "\nGreedyMR finished in {} rounds with value {:.2}",
        full.rounds, final_value
    );

    println!("\nany-time trace (fraction of final value per fraction of rounds):");
    for checkpoint in [0.1, 0.25, 0.5, 0.75, 1.0] {
        let round = ((full.rounds as f64 * checkpoint).ceil() as usize).clamp(1, full.rounds);
        let value = full.value_per_round[round - 1];
        println!(
            "  after {:>3.0}% of the rounds: {:>6.2}% of the final value",
            checkpoint * 100.0,
            100.0 * value / final_value
        );
    }
    if let Some((round, fraction)) = full.rounds_to_reach_fraction(0.95) {
        println!(
            "\n95% of the final value is reached after round {round} ({:.1}% of the rounds)",
            fraction * 100.0
        );
    }

    // Early stopping: cap the rounds and verify the solution is feasible —
    // this is what "deliver content immediately and keep refining in the
    // background" means in the paper.
    let budget = (full.rounds / 3).max(1);
    let early = GreedyMr::new(GreedyMrConfig::default().with_max_rounds(budget)).run(&graph, &caps);
    println!(
        "\nstopping after {budget} rounds: value {:.2} ({:.1}% of the full run), feasible: {}",
        early.value(&graph),
        100.0 * early.value(&graph) / final_value,
        early.matching.is_feasible(&graph, &caps)
    );
}
