//! The Yahoo! Answers scenario: route open questions to the users most
//! likely to answer them, and demonstrate the *any-time* property of
//! GreedyMR (Figure 5 of the paper) — the algorithm can be stopped at any
//! round and still returns a feasible matching whose value is already close
//! to the final one.
//!
//! The full run goes through the [`MatchingPipeline`] builder; the
//! early-stopped run reuses its candidate graph and reruns only the
//! matching stage through the flow-first `GreedyMr::run` with a round cap.
//!
//! ```text
//! cargo run --release --example question_routing
//! ```

use social_content_matching::datagen::AnswersGenerator;
use social_content_matching::mapreduce::FlowContext;
use social_content_matching::matching::{AlgorithmKind, GreedyMr, GreedyMrConfig};
use social_content_matching::text::TokenizerConfig;
use social_content_matching::MatchingPipeline;

fn main() {
    // Synthetic question-answering dataset: questions and user profiles
    // over a topical vocabulary, activity = answers written.
    let dataset = AnswersGenerator {
        num_questions: 500,
        num_users: 150,
        seed: 11,
        ..AnswersGenerator::default()
    }
    .generate();
    println!(
        "dataset: {} open questions, {} users",
        dataset.num_items(),
        dataset.num_consumers()
    );

    // Full pipeline: candidate edges from answering-history similarity,
    // uniform question capacities, activity-proportional user capacities,
    // GreedyMR with the per-round value trace.
    let run = MatchingPipeline::new(dataset)
        .tokenizer(TokenizerConfig::default())
        .sigma(0.12)
        .alpha(1.0)
        .algorithm(AlgorithmKind::GreedyMr)
        .run();
    println!("candidate edges: {}", run.graph.num_edges());

    let full = &run.matching;
    let final_value = full.value(&run.graph);
    println!(
        "\nGreedyMR finished in {} rounds with value {:.2} ({} MapReduce jobs incl. the {} simjoin jobs)",
        full.rounds, final_value, run.report.num_jobs(), run.simjoin_jobs
    );

    println!("\nany-time trace (fraction of final value per fraction of rounds):");
    for checkpoint in [0.1, 0.25, 0.5, 0.75, 1.0] {
        let round = ((full.rounds as f64 * checkpoint).ceil() as usize).clamp(1, full.rounds);
        let value = full.value_per_round[round - 1];
        println!(
            "  after {:>3.0}% of the rounds: {:>6.2}% of the final value",
            checkpoint * 100.0,
            100.0 * value / final_value
        );
    }
    if let Some((round, fraction)) = full.rounds_to_reach_fraction(0.95) {
        println!(
            "\n95% of the final value is reached after round {round} ({:.1}% of the rounds)",
            fraction * 100.0
        );
    }

    // Early stopping: cap the rounds and verify the solution is feasible —
    // this is what "deliver content immediately and keep refining in the
    // background" means in the paper.  The candidate graph is already
    // built, so only the matching stage reruns (with its own flow).
    let budget = (full.rounds / 3).max(1);
    let early = GreedyMr::new(GreedyMrConfig::default().with_max_rounds(budget)).run(
        &run.graph,
        &run.capacities,
        &FlowContext::named("greedy-early"),
    );
    println!(
        "\nstopping after {budget} rounds: value {:.2} ({:.1}% of the full run), feasible: {}",
        early.value(&run.graph),
        100.0 * early.value(&run.graph) / final_value,
        early.matching.is_feasible(&run.graph, &run.capacities)
    );
}
