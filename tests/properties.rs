//! Property-based tests (proptest) for the core invariants of the
//! reproduction:
//!
//! * the centralized greedy and GreedyMR always produce feasible matchings
//!   worth at least half of the optimum,
//! * StackMR never violates capacities by more than the (1+ε) factor and
//!   achieves its 1/(6+ε) guarantee,
//! * the exact solver dominates every approximation,
//! * the MapReduce engine computes the same result as a sequential
//!   reference regardless of task/thread configuration,
//! * sparse-vector algebra behaves like algebra.

use proptest::prelude::*;

use social_content_matching::graph::{BipartiteGraph, Capacities, ConsumerId, Edge, ItemId};
use social_content_matching::mapreduce::prelude::*;
use social_content_matching::matching::{
    greedy_matching, optimal_matching, stack_matching, GreedyMr, GreedyMrConfig, StackMr,
    StackMrConfig,
};
use social_content_matching::text::{SparseVector, TermId};

/// A random small b-matching instance: a bipartite graph with up to
/// 6 × 6 nodes, random edges with positive weights, and random capacities.
fn instance_strategy() -> impl Strategy<Value = (BipartiteGraph, Capacities)> {
    (2usize..6, 2usize..6)
        .prop_flat_map(|(items, consumers)| {
            let edge_strategy = proptest::collection::vec(
                (0..items as u32, 0..consumers as u32, 0.01f64..1.0),
                1..(items * consumers + 1),
            );
            let item_caps = proptest::collection::vec(1u64..4, items);
            let consumer_caps = proptest::collection::vec(1u64..4, consumers);
            (
                Just(items),
                Just(consumers),
                edge_strategy,
                item_caps,
                consumer_caps,
            )
        })
        .prop_map(|(items, consumers, raw_edges, item_caps, consumer_caps)| {
            // Deduplicate parallel edges to keep instances clean.
            let mut seen = std::collections::HashSet::new();
            let mut edges = Vec::new();
            for (t, c, w) in raw_edges {
                if seen.insert((t, c)) {
                    edges.push(Edge::new(ItemId(t), ConsumerId(c), w));
                }
            }
            let graph = BipartiteGraph::from_edges(items, consumers, edges);
            let caps = Capacities::from_vectors(item_caps, consumer_caps);
            (graph, caps)
        })
}

fn single_thread_job(name: &str) -> JobConfig {
    JobConfig::named(name).with_threads(1)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn greedy_is_feasible_and_half_optimal((graph, caps) in instance_strategy()) {
        let greedy = greedy_matching(&graph, &caps);
        let optimal = optimal_matching(&graph, &caps);
        prop_assert!(greedy.is_feasible(&graph, &caps));
        prop_assert!(optimal.is_feasible(&graph, &caps));
        prop_assert!(greedy.value(&graph) <= optimal.value(&graph) + 1e-9);
        prop_assert!(greedy.value(&graph) >= 0.5 * optimal.value(&graph) - 1e-9);
    }

    #[test]
    fn greedy_mr_is_feasible_and_half_optimal((graph, caps) in instance_strategy()) {
        let run = GreedyMr::new(
            GreedyMrConfig::default().with_job(single_thread_job("prop-greedy-mr")),
        )
        .run(&graph, &caps, &FlowContext::new(single_thread_job("prop-greedy-mr")));
        let optimal = optimal_matching(&graph, &caps);
        prop_assert!(run.matching.is_feasible(&graph, &caps));
        prop_assert!(run.value(&graph) <= optimal.value(&graph) + 1e-9);
        prop_assert!(run.value(&graph) >= 0.5 * optimal.value(&graph) - 1e-9);
        // The any-time trace never decreases.
        for window in run.value_per_round.windows(2) {
            prop_assert!(window[1] >= window[0] - 1e-12);
        }
    }

    #[test]
    fn stack_mr_respects_violation_bound_and_guarantee((graph, caps) in instance_strategy()) {
        let epsilon = 1.0;
        let run = StackMr::new(
            StackMrConfig::default()
                .with_epsilon(epsilon)
                .with_seed(99)
                .with_job(single_thread_job("prop-stack-mr")),
        )
        .run(&graph, &caps, &FlowContext::new(single_thread_job("prop-stack-mr")));
        let optimal = optimal_matching(&graph, &caps);
        prop_assert!(run.matching.max_violation(&graph, &caps) <= epsilon + 1e-9);
        prop_assert!(
            run.value(&graph) >= optimal.value(&graph) / (6.0 + epsilon) - 1e-9,
            "StackMR value {} below guarantee of optimum {}",
            run.value(&graph),
            optimal.value(&graph)
        );
    }

    #[test]
    fn centralized_stack_is_feasible_and_dominated_by_the_optimum((graph, caps) in instance_strategy()) {
        let stack = stack_matching(&graph, &caps, 1.0);
        let optimal = optimal_matching(&graph, &caps);
        prop_assert!(stack.is_feasible(&graph, &caps));
        prop_assert!(stack.value(&graph) <= optimal.value(&graph) + 1e-9);
        prop_assert!(stack.value(&graph) >= optimal.value(&graph) / 7.0 - 1e-9);
    }

    #[test]
    fn engine_aggregation_is_configuration_independent(
        values in proptest::collection::vec((0u32..20, 1u64..100), 1..60),
        map_tasks in 1usize..6,
        reduce_tasks in 1usize..5,
        threads in 1usize..4,
    ) {
        struct Identity;
        impl Mapper for Identity {
            type InKey = u32;
            type InValue = u64;
            type OutKey = u32;
            type OutValue = u64;
            fn map(&self, k: &u32, v: &u64, out: &mut Emitter<u32, u64>) {
                out.emit(*k, *v);
            }
        }
        struct Sum;
        impl Reducer for Sum {
            type Key = u32;
            type InValue = u64;
            type OutKey = u32;
            type OutValue = u64;
            fn reduce(&self, k: &u32, vs: &[u64], out: &mut Emitter<u32, u64>) {
                out.emit(*k, vs.iter().sum());
            }
        }
        // Sequential reference.
        let mut expected = std::collections::BTreeMap::new();
        for (k, v) in &values {
            *expected.entry(*k).or_insert(0u64) += v;
        }
        let job = Job::new(
            JobConfig::named("prop-engine")
                .with_map_tasks(map_tasks)
                .with_reduce_tasks(reduce_tasks)
                .with_threads(threads),
        );
        let result = job.run(&Identity, &Sum, values);
        let got: std::collections::BTreeMap<u32, u64> = result.output.into_iter().collect();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn sparse_vector_algebra_behaves(
        a in proptest::collection::vec((0u32..30, -2.0f64..2.0), 0..15),
        b in proptest::collection::vec((0u32..30, -2.0f64..2.0), 0..15),
    ) {
        let va = SparseVector::from_entries(a.iter().map(|&(t, w)| (TermId(t), w)));
        let vb = SparseVector::from_entries(b.iter().map(|&(t, w)| (TermId(t), w)));
        // Dot product is symmetric.
        prop_assert!((va.dot(&vb) - vb.dot(&va)).abs() < 1e-9);
        // Cauchy–Schwarz.
        prop_assert!(va.dot(&vb).abs() <= va.norm() * vb.norm() + 1e-9);
        // Normalization yields unit (or zero) norm and preserves direction.
        let na = va.normalized();
        if va.norm() > 0.0 {
            prop_assert!((na.norm() - 1.0).abs() < 1e-9);
            prop_assert!(na.dot(&va) >= -1e-9);
        } else {
            prop_assert!(na.is_empty());
        }
    }

    #[test]
    fn matching_violation_is_zero_iff_feasible((graph, caps) in instance_strategy()) {
        let run = GreedyMr::new(
            GreedyMrConfig::default().with_job(single_thread_job("prop-violation")),
        )
        .run(&graph, &caps, &FlowContext::new(single_thread_job("prop-violation")));
        let feasible = run.matching.is_feasible(&graph, &caps);
        let avg = run.matching.average_violation(&graph, &caps);
        let max = run.matching.max_violation(&graph, &caps);
        prop_assert_eq!(feasible, max == 0.0);
        prop_assert!(avg <= max + 1e-12);
    }
}
