//! Equivalence lock for the multi-process runtime over the full paper
//! pipeline: for every shard count, memory budget and matcher, the sharded
//! session must reproduce the in-process run **byte-identically** —
//! similarity-join edges, final matching, and the per-job shuffled-record
//! counts — and an injected worker crash must retry to the same bytes.
//!
//! The matrix shards ∈ {1, 2, 4} × budgets {4 KiB, ∞} × {GreedyMR,
//! StackMR} is enumerated exhaustively (one test per matcher × shard
//! count, looping the budgets) rather than sampled: process-spawning
//! tests need deterministic replay, so every `run_sharded` call a test
//! makes must happen in the same order in the worker's re-execution of
//! that test.

use social_content_matching::datagen::{FlickrGenerator, SocialDataset};
use social_content_matching::distrib::{is_worker_process, last_session_stats, ShardOptions};
use social_content_matching::mapreduce::JobConfig;
use social_content_matching::matching::AlgorithmKind;
use social_content_matching::{MatchingPipeline, PipelineRun};

fn dataset() -> SocialDataset {
    FlickrGenerator {
        num_photos: 40,
        num_users: 15,
        vocabulary: 60,
        seed: 9,
        ..FlickrGenerator::default()
    }
    .generate()
}

fn pipeline(algorithm: AlgorithmKind, budget: Option<u64>, name: &str) -> MatchingPipeline {
    MatchingPipeline::new(dataset())
        .sigma(0.12)
        .algorithm(algorithm)
        .job(
            JobConfig::named(name)
                .with_threads(2)
                .with_map_tasks(6)
                .with_reduce_tasks(3)
                .with_memory_budget(budget),
        )
}

fn shuffle_profile(run: &PipelineRun) -> Vec<(String, u64)> {
    run.report
        .jobs
        .iter()
        .map(|job| (job.job_name.clone(), job.shuffle_records))
        .collect()
}

fn assert_runs_identical(local: &PipelineRun, sharded: &PipelineRun, what: &str) {
    assert_eq!(
        local.graph.edges(),
        sharded.graph.edges(),
        "{what}: similarity-join edges must be byte-identical"
    );
    assert_eq!(
        local.matching.matching, sharded.matching.matching,
        "{what}: the final matching must be identical"
    );
    assert_eq!(
        local.matching.rounds, sharded.matching.rounds,
        "{what}: the matcher must take the same number of rounds"
    );
    assert_eq!(
        shuffle_profile(local),
        shuffle_profile(sharded),
        "{what}: every job must shuffle the same records"
    );
}

/// Runs the {4 KiB, unlimited} budget pair for one matcher × shard count.
/// `test_name` must be the calling test function's name: it keys the
/// session and tells the re-invoked test binary which test to replay.
fn assert_sharded_pipeline_equivalent(algorithm: AlgorithmKind, shards: usize, test_name: &str) {
    for (tag, budget) in [("4KiB", Some(4096u64)), ("unlimited", None)] {
        let name = format!("eq-{test_name}-{tag}");
        let local = pipeline(algorithm, budget, &name).run();
        let sharded = pipeline(algorithm, budget, &name)
            .shard_options(
                ShardOptions::new(shards)
                    .with_session_key(format!("{test_name}-{tag}"))
                    .with_worker_args(["--exact", test_name, "--nocapture"]),
            )
            .run();
        assert_runs_identical(
            &local,
            &sharded,
            &format!("{algorithm:?} × {shards} shards × {tag}"),
        );
        // Coordinator-only checks: a worker spawned for a *later* session
        // replays this code too, and has no session stats of its own.
        if !is_worker_process() {
            let stats = last_session_stats().expect("a session just completed");
            assert_eq!(stats.shards, shards);
            assert_eq!(stats.respawns, 0, "fault-free run must not respawn");
            assert!(
                stats.jobs >= 2 + local.matching.mr_jobs as u64,
                "every simjoin and matching job must have gone through the session"
            );
        }
    }
}

#[test]
fn greedy_one_shard_is_byte_identical() {
    assert_sharded_pipeline_equivalent(
        AlgorithmKind::GreedyMr,
        1,
        "greedy_one_shard_is_byte_identical",
    );
}

#[test]
fn greedy_two_shards_are_byte_identical() {
    assert_sharded_pipeline_equivalent(
        AlgorithmKind::GreedyMr,
        2,
        "greedy_two_shards_are_byte_identical",
    );
}

#[test]
fn greedy_four_shards_are_byte_identical() {
    assert_sharded_pipeline_equivalent(
        AlgorithmKind::GreedyMr,
        4,
        "greedy_four_shards_are_byte_identical",
    );
}

#[test]
fn stack_one_shard_is_byte_identical() {
    assert_sharded_pipeline_equivalent(
        AlgorithmKind::StackMr,
        1,
        "stack_one_shard_is_byte_identical",
    );
}

#[test]
fn stack_two_shards_are_byte_identical() {
    assert_sharded_pipeline_equivalent(
        AlgorithmKind::StackMr,
        2,
        "stack_two_shards_are_byte_identical",
    );
}

#[test]
fn stack_four_shards_are_byte_identical() {
    assert_sharded_pipeline_equivalent(
        AlgorithmKind::StackMr,
        4,
        "stack_four_shards_are_byte_identical",
    );
}

#[test]
fn killed_pipeline_worker_retries_to_the_same_bytes() {
    let test_name = "killed_pipeline_worker_retries_to_the_same_bytes";
    let local = pipeline(AlgorithmKind::GreedyMr, None, "eq-fault").run();
    let sharded = pipeline(AlgorithmKind::GreedyMr, None, "eq-fault")
        .shard_options(
            ShardOptions::new(2)
                .with_session_key(test_name)
                .with_worker_args(["--exact", test_name, "--nocapture"])
                .with_fail_shard(Some(0)),
        )
        .run();
    assert_runs_identical(&local, &sharded, "fault-injected GreedyMR × 2 shards");
    let stats = last_session_stats().expect("a session just completed");
    assert!(
        stats.respawns >= 1,
        "the injected fault must have forced a respawn, got {stats:?}"
    );
}
