//! Regression tests for the `flow` API redesign: the old hand-wired entry
//! points (`mapreduce_similarity_join` + `GreedyMr::run` / `StackMr::run`)
//! and the new `Dataset`-chain path behind `MatchingPipeline` must produce
//! byte-identical results, and a single `FlowReport` must reproduce the
//! paper's per-stage job counts (2 similarity-join jobs, one job per
//! GreedyMR round) and total shuffled records.

use social_content_matching::datagen::FlickrGenerator;
use social_content_matching::mapreduce::flow::FlowContext;
use social_content_matching::mapreduce::JobConfig;
use social_content_matching::matching::{
    AlgorithmKind, GreedyMr, GreedyMrConfig, StackMr, StackMrConfig,
};
use social_content_matching::simjoin::{mapreduce_similarity_join, SimJoinConfig};
use social_content_matching::text::{Corpus, TokenizerConfig};
use social_content_matching::MatchingPipeline;

fn dataset() -> social_content_matching::datagen::SocialDataset {
    FlickrGenerator {
        num_photos: 120,
        num_users: 40,
        vocabulary: 120,
        seed: 3,
        ..FlickrGenerator::default()
    }
    .generate()
}

const SIGMA: f64 = 0.15;

fn quick_job(name: &str) -> JobConfig {
    JobConfig::named(name).with_threads(2)
}

#[test]
fn pipeline_run_is_byte_identical_to_the_pre_redesign_glue() {
    let dataset = dataset();

    // --- the pre-redesign glue, verbatim: hand-built corpora, the old
    // simjoin wrapper, a self-contained GreedyMr run ---
    let items = Corpus::build(dataset.items.clone(), &TokenizerConfig::tags_only());
    let users = Corpus::build(dataset.consumers.clone(), &TokenizerConfig::tags_only());
    let join = mapreduce_similarity_join(
        &items,
        &users,
        &SimJoinConfig::default()
            .with_threshold(SIGMA)
            .with_job(quick_job("old")),
    );
    let caps = dataset.capacities(1.0);
    let old_flow = FlowContext::new(quick_job("old"));
    let old_matching = GreedyMr::new(GreedyMrConfig::default().with_job(quick_job("old"))).run(
        &join.graph,
        &caps,
        &old_flow,
    );

    // --- the new chain ---
    let run = MatchingPipeline::new(dataset)
        .tokenizer(TokenizerConfig::tags_only())
        .sigma(SIGMA)
        .alpha(1.0)
        .algorithm(AlgorithmKind::GreedyMr)
        .job(quick_job("new"))
        .run();

    // Candidate graphs byte-identical: same edges in the same order with
    // bit-identical weights.
    assert_eq!(run.graph.num_edges(), join.graph.num_edges());
    for (new_edge, old_edge) in run.graph.edges().iter().zip(join.graph.edges()) {
        assert_eq!(new_edge.item, old_edge.item);
        assert_eq!(new_edge.consumer, old_edge.consumer);
        assert_eq!(new_edge.weight, old_edge.weight);
    }
    assert_eq!(run.candidate_pairs, join.candidate_pairs);
    assert_eq!(run.indexed_entries, join.indexed_entries);

    // Matchings byte-identical, round for round.
    assert_eq!(
        run.matching.matching.to_edge_vec(),
        old_matching.matching.to_edge_vec()
    );
    assert_eq!(run.matching.rounds, old_matching.rounds);
    assert_eq!(run.matching.value_per_round, old_matching.value_per_round);

    // One FlowReport reproduces the paper's per-stage job counts and the
    // total communication cost of the pre-redesign path.
    assert_eq!(run.simjoin_jobs, 2, "the similarity join is two jobs");
    assert_eq!(
        run.matching.mr_jobs, old_matching.rounds,
        "GreedyMR runs one job per round"
    );
    assert_eq!(run.report.num_jobs(), 2 + old_matching.mr_jobs);
    let old_shuffled: u64 = join
        .job_metrics
        .iter()
        .map(|m| m.shuffle_records)
        .sum::<u64>()
        + old_matching.total_shuffled_records();
    assert_eq!(run.report.total_shuffled_records(), old_shuffled);

    // Per-job record flow identical, job by job, across both stages.
    let old_metrics: Vec<_> = join
        .job_metrics
        .iter()
        .chain(old_matching.job_metrics.iter())
        .collect();
    assert_eq!(run.report.jobs.len(), old_metrics.len());
    for (new_job, old_job) in run.report.jobs.iter().zip(old_metrics) {
        assert_eq!(new_job.map_input_records, old_job.map_input_records);
        assert_eq!(new_job.map_output_records, old_job.map_output_records);
        assert_eq!(new_job.shuffle_records, old_job.shuffle_records);
        assert_eq!(new_job.reduce_output_records, old_job.reduce_output_records);
    }
}

#[test]
fn stack_mr_through_the_pipeline_matches_the_old_wrapper() {
    let dataset = dataset();
    let items = Corpus::build(dataset.items.clone(), &TokenizerConfig::tags_only());
    let users = Corpus::build(dataset.consumers.clone(), &TokenizerConfig::tags_only());
    let join = mapreduce_similarity_join(
        &items,
        &users,
        &SimJoinConfig::default()
            .with_threshold(SIGMA)
            .with_job(quick_job("old")),
    );
    let caps = dataset.capacities(1.0);
    let old_flow = FlowContext::new(quick_job("old"));
    let old = StackMr::new(
        StackMrConfig::default()
            .with_seed(13)
            .with_job(quick_job("old")),
    )
    .run(&join.graph, &caps, &old_flow);

    let run = MatchingPipeline::new(dataset)
        .tokenizer(TokenizerConfig::tags_only())
        .sigma(SIGMA)
        .seed(13)
        .algorithm(AlgorithmKind::StackMr)
        .job(quick_job("new"))
        .run();

    assert_eq!(
        run.matching.matching.to_edge_vec(),
        old.matching.to_edge_vec()
    );
    assert_eq!(run.matching.mr_jobs, old.mr_jobs);
    assert_eq!(run.report.num_jobs(), 2 + old.mr_jobs);
    assert_eq!(
        run.matching.total_shuffled_records(),
        old.total_shuffled_records()
    );
}
