//! End-to-end integration tests spanning every crate of the workspace:
//! dataset generation → similarity join → capacities → matching.

use social_content_matching::datagen::{AnswersGenerator, DatasetPreset, FlickrGenerator};
use social_content_matching::graph::Capacities;
use social_content_matching::mapreduce::{FlowContext, JobConfig};
use social_content_matching::matching::{
    greedy_matching, optimal_matching, GreedyMr, GreedyMrConfig, StackMr, StackMrConfig,
};
use social_content_matching::simjoin::{
    baseline_similarity_join, mapreduce_similarity_join, SimJoinConfig,
};
use social_content_matching::text::{Corpus, TokenizerConfig};

fn quick_job(name: &str) -> JobConfig {
    JobConfig::named(name).with_threads(2)
}

fn flickr_pipeline(sigma: f64) -> (social_content_matching::graph::BipartiteGraph, Capacities) {
    let dataset = FlickrGenerator {
        num_photos: 120,
        num_users: 40,
        vocabulary: 120,
        seed: 3,
        ..FlickrGenerator::default()
    }
    .generate();
    let items = Corpus::build(dataset.items.clone(), &TokenizerConfig::tags_only());
    let users = Corpus::build(dataset.consumers.clone(), &TokenizerConfig::tags_only());
    let join = mapreduce_similarity_join(
        &items,
        &users,
        &SimJoinConfig::default()
            .with_threshold(sigma)
            .with_job(quick_job("e2e-join")),
    );
    let caps = dataset.capacities(1.0);
    (join.graph, caps)
}

#[test]
fn flickr_pipeline_produces_a_matchable_graph() {
    let (graph, caps) = flickr_pipeline(0.15);
    assert!(
        graph.num_edges() > 0,
        "the synthetic dataset must produce candidate edges"
    );
    assert!(caps.matches(&graph));

    let run = GreedyMr::new(GreedyMrConfig::default().with_job(quick_job("e2e-greedy"))).run(
        &graph,
        &caps,
        &FlowContext::new(quick_job("e2e-greedy")),
    );
    assert!(run.matching.is_feasible(&graph, &caps));
    assert!(run.value(&graph) > 0.0);
    assert!(run.mr_jobs >= 1);
}

#[test]
fn greedy_mr_beats_stack_mr_on_value_and_both_respect_their_guarantees() {
    let (graph, caps) = flickr_pipeline(0.15);
    let greedy_run = GreedyMr::new(GreedyMrConfig::default().with_job(quick_job("cmp-greedy")))
        .run(&graph, &caps, &FlowContext::new(quick_job("cmp-greedy")));
    let stack_run = StackMr::new(
        StackMrConfig::default()
            .with_seed(13)
            .with_job(quick_job("cmp-stack")),
    )
    .run(&graph, &caps, &FlowContext::new(quick_job("cmp-stack")));

    // The paper's headline comparison: GreedyMR consistently achieves the
    // higher b-matching value (it has the better guarantee too).
    assert!(
        greedy_run.value(&graph) >= stack_run.value(&graph) * 0.95,
        "GreedyMR ({}) should not fall meaningfully below StackMR ({})",
        greedy_run.value(&graph),
        stack_run.value(&graph)
    );
    // GreedyMR is feasible; StackMR violates by at most a factor (1+eps).
    assert!(greedy_run.matching.is_feasible(&graph, &caps));
    assert!(stack_run.matching.max_violation(&graph, &caps) <= 1.0 + 1e-9);
}

#[test]
fn similarity_join_and_baseline_agree_on_the_answers_dataset() {
    let dataset = AnswersGenerator {
        num_questions: 60,
        num_users: 25,
        vocabulary: 150,
        num_topics: 5,
        seed: 17,
        ..AnswersGenerator::default()
    }
    .generate();
    let questions = Corpus::build(dataset.items.clone(), &TokenizerConfig::default());
    let users = Corpus::build(dataset.consumers.clone(), &TokenizerConfig::default());
    for sigma in [0.1, 0.3] {
        let mr = mapreduce_similarity_join(
            &questions,
            &users,
            &SimJoinConfig::default()
                .with_threshold(sigma)
                .with_job(quick_job("agree-join")),
        );
        let baseline = baseline_similarity_join(&questions, &users, sigma);
        assert_eq!(
            mr.graph.num_edges(),
            baseline.num_edges(),
            "similarity join disagrees with the baseline at sigma={sigma}"
        );
    }
}

#[test]
fn centralized_greedy_is_a_half_approximation_on_the_pipeline_graph() {
    let (graph, caps) = flickr_pipeline(0.25);
    if graph.num_edges() == 0 {
        return;
    }
    // Keep the exact solver tractable: thin the graph further if needed.
    let graph = if graph.num_edges() > 3_000 {
        graph.filter_by_threshold(0.4)
    } else {
        graph
    };
    let optimal = optimal_matching(&graph, &caps);
    let greedy = greedy_matching(&graph, &caps);
    assert!(greedy.value(&graph) >= 0.5 * optimal.value(&graph) - 1e-9);
    assert!(greedy.value(&graph) <= optimal.value(&graph) + 1e-9);
}

#[test]
fn preset_sweep_shapes_match_the_paper() {
    // On flickr-small at two densities: lowering sigma increases both the
    // number of edges and the achieved matching value (the saturation
    // behaviour described in Section 6).
    let instance = smr_bench::pipeline::DatasetInstance::generate(
        DatasetPreset::FlickrSmall,
        quick_job("sweep"),
    );
    let caps = instance.capacities(1.0);
    let sweep = instance.preset.sigma_sweep();
    let sparse_sigma = sweep[0];
    let dense_sigma = *sweep.last().unwrap();
    let sparse = instance.graph_at(sparse_sigma);
    let dense = instance.graph_at(dense_sigma);
    assert!(dense.num_edges() > sparse.num_edges());

    let run_on = |graph: &social_content_matching::graph::BipartiteGraph| {
        GreedyMr::new(GreedyMrConfig::default().with_job(quick_job("sweep-greedy")))
            .run(graph, &caps, &FlowContext::new(quick_job("sweep-greedy")))
            .value(graph)
    };
    let sparse_value = run_on(&sparse);
    let dense_value = run_on(&dense);
    assert!(
        dense_value >= sparse_value - 1e-9,
        "more candidate edges must not reduce the achievable value ({dense_value} vs {sparse_value})"
    );
}

#[test]
fn anytime_trace_reaches_95_percent_before_the_last_round() {
    let (graph, caps) = flickr_pipeline(0.12);
    let run = GreedyMr::new(GreedyMrConfig::default().with_job(quick_job("anytime"))).run(
        &graph,
        &caps,
        &FlowContext::new(quick_job("anytime")),
    );
    if run.rounds < 4 {
        // Too small to say anything meaningful.
        return;
    }
    let (_, fraction) = run.rounds_to_reach_fraction(0.95).expect("non-zero value");
    assert!(
        fraction < 1.0,
        "95% of the value should be reached before the final round (got {fraction})"
    );
}
