//! End-to-end acceptance of the out-of-core storage layer: a full
//! pipeline run (similarity join + GreedyMR rounds) under a small memory
//! budget must
//!
//! 1. produce output **byte-identical** to the unlimited-budget run,
//! 2. report `disk_runs > 0` and `spill_bytes > 0` in its job metrics,
//! 3. leave **no temp files behind** once the jobs (and their
//!    `SpillManager`s) are done.

use social_content_matching::datagen::FlickrGenerator;
use social_content_matching::mapreduce::JobConfig;
use social_content_matching::matching::AlgorithmKind;
use social_content_matching::{MatchingPipeline, PipelineRun};

fn dataset() -> social_content_matching::datagen::SocialDataset {
    FlickrGenerator {
        num_photos: 80,
        num_users: 30,
        vocabulary: 100,
        seed: 11,
        ..FlickrGenerator::default()
    }
    .generate()
}

fn run_pipeline(budget: Option<u64>, spill_dir: Option<&std::path::Path>) -> PipelineRun {
    let mut pipeline = MatchingPipeline::new(dataset())
        .sigma(0.1)
        .algorithm(AlgorithmKind::GreedyMr)
        .job(JobConfig::named("spill-e2e").with_threads(2))
        .memory_budget(budget);
    if let Some(dir) = spill_dir {
        pipeline = pipeline.spill_dir(dir);
    }
    pipeline.run()
}

#[test]
fn budgeted_pipeline_is_byte_identical_spills_and_cleans_up() {
    let unlimited = run_pipeline(None, None);
    assert_eq!(
        unlimited.report.totals.disk_runs, 0,
        "the unlimited run must not touch disk"
    );

    let spill_base = std::env::temp_dir().join(format!("smr-e2e-spill-{}", std::process::id()));
    std::fs::create_dir_all(&spill_base).unwrap();
    // A 1 KiB budget across the whole pipeline: every join job and every
    // matching round spills.
    let budgeted = run_pipeline(Some(1024), Some(&spill_base));

    // (1) Byte-identity of everything the pipeline produces.
    assert_eq!(budgeted.graph.edges(), unlimited.graph.edges());
    assert_eq!(
        budgeted.matching.matching.to_edge_vec(),
        unlimited.matching.matching.to_edge_vec()
    );
    assert_eq!(budgeted.matching.rounds, unlimited.matching.rounds);
    assert_eq!(
        budgeted.report.total_shuffled_records(),
        unlimited.report.total_shuffled_records()
    );

    // (2) The spill path actually ran, and the metrics say so.
    assert!(
        budgeted.report.totals.disk_runs > 0,
        "disk_runs must be reported: {:?}",
        budgeted.report.totals
    );
    assert!(
        budgeted.report.totals.spill_bytes > 0,
        "spill_bytes must be reported: {:?}",
        budgeted.report.totals
    );
    // Per-job metrics carry the spill accounting too (at least one job
    // spilled; sums match the totals).
    let per_job_runs: u64 = budgeted.report.jobs.iter().map(|m| m.disk_runs).sum();
    assert_eq!(per_job_runs, budgeted.report.totals.disk_runs);

    // (3) Every SpillManager removed its directory.
    assert_eq!(
        std::fs::read_dir(&spill_base).unwrap().count(),
        0,
        "no temp files may outlive the pipeline"
    );
    std::fs::remove_dir_all(&spill_base).unwrap();
}

#[test]
fn pipeline_under_the_env_budget_matches_the_unlimited_run() {
    // The CI spill job sets SMR_MEMORY_BUDGET for the whole suite; this
    // test pins the invariant it relies on — defaults (whatever the
    // environment) and an explicit unlimited budget agree bit-for-bit.
    let default_budget = MatchingPipeline::new(dataset())
        .sigma(0.1)
        .job(JobConfig::named("spill-env").with_threads(2))
        .run();
    let unlimited = run_pipeline(None, None);
    assert_eq!(
        default_budget.matching.matching.to_edge_vec(),
        unlimited.matching.matching.to_edge_vec()
    );
    assert_eq!(
        default_budget.report.total_shuffled_records(),
        unlimited.report.total_shuffled_records()
    );
}
