//! Locks the sketch candidate-generation subsystem to its contracts:
//!
//! * swapping generators is invisible when the generator is the default —
//!   a `MatchingPipeline` without `candidate_generator(...)`, one with the
//!   explicit [`ExactPrefixJoin`], and the direct
//!   `mapreduce_similarity_join_flow` call must be byte-identical, edges
//!   and counters both (the "default stays exact" acceptance criterion);
//! * the sketch generators' recall on `flickr-small` at its default σ and
//!   well-known sketch seed is pinned — DISCO and LSH are deterministic
//!   given `(seed, σ)`, so these numbers only move when the sampling
//!   math, the hash, or the dataset generator changes, and any of those
//!   must show up here as a conscious diff.

use social_content_matching::datagen::{DatasetPreset, FlickrGenerator};
use social_content_matching::mapreduce::flow::FlowContext;
use social_content_matching::mapreduce::JobConfig;
use social_content_matching::simjoin::mapreduce_similarity_join_flow;
use social_content_matching::sketch::{DiscoSampler, ExactPrefixJoin, LshBander};
use social_content_matching::text::{Corpus, TokenizerConfig};
use social_content_matching::{CandidateGraph, MatchingPipeline};

fn quick_job(name: &str) -> JobConfig {
    JobConfig::named(name).with_threads(2)
}

/// `(item, consumer, weight bits)` triples in graph order — bit-exact
/// equality, not approximate.
fn edge_bits(candidate: &CandidateGraph) -> Vec<(u32, u32, u64)> {
    candidate
        .graph
        .edges()
        .iter()
        .map(|e| (e.item.0, e.consumer.0, e.weight.to_bits()))
        .collect()
}

#[test]
fn default_generator_is_byte_identical_to_the_direct_join() {
    let dataset = FlickrGenerator {
        num_photos: 120,
        num_users: 40,
        vocabulary: 120,
        seed: 3,
        ..FlickrGenerator::default()
    }
    .generate();
    let sigma = 0.15;

    let items = Corpus::build(dataset.items.clone(), &TokenizerConfig::tags_only());
    let users = Corpus::build(dataset.consumers.clone(), &TokenizerConfig::tags_only());
    let flow = FlowContext::new(quick_job("direct"));
    let direct = mapreduce_similarity_join_flow(&items, &users, sigma, &flow);

    let implicit = MatchingPipeline::new(dataset.clone())
        .tokenizer(TokenizerConfig::tags_only())
        .sigma(sigma)
        .job(quick_job("implicit"))
        .build_graph();
    let explicit = MatchingPipeline::new(dataset)
        .tokenizer(TokenizerConfig::tags_only())
        .sigma(sigma)
        .candidate_generator(ExactPrefixJoin::new())
        .job(quick_job("explicit"))
        .build_graph();

    // Both pipeline spellings agree with the direct call, edge for edge
    // with bit-identical weights.
    let direct_bits: Vec<(u32, u32, u64)> = direct
        .graph
        .edges()
        .iter()
        .map(|e| (e.item.0, e.consumer.0, e.weight.to_bits()))
        .collect();
    assert!(!direct_bits.is_empty(), "the reference join found no edges");
    assert_eq!(edge_bits(&implicit), direct_bits);
    assert_eq!(edge_bits(&explicit), direct_bits);

    // And with its counters — candidate accounting, index size, shuffle
    // volume — so the default path is the old path, not merely equivalent.
    for candidate in [&implicit, &explicit] {
        assert_eq!(candidate.generator, direct.generator);
        assert_eq!(candidate.candidate_pairs, direct.candidate_pairs);
        assert_eq!(candidate.candidates_pruned, direct.candidates_pruned);
        assert_eq!(candidate.verify_exact, direct.verify_exact);
        assert_eq!(candidate.indexed_entries, direct.indexed_entries);
        assert_eq!(candidate.shuffled_records, direct.shuffled_records);
        assert_eq!(candidate.shuffled_bytes, direct.shuffled_bytes);
        assert_eq!(candidate.simjoin_jobs, 2);
    }
    // Job names keep the historical `-index` / `-probe` suffixes.
    assert_eq!(
        implicit.report.job_names(),
        vec!["implicit-index", "implicit-probe"]
    );
}

/// The pinned frontier point per sketch generator on `flickr-small` at its
/// default σ = 0.16 and sketch seed: the same numbers the `sketch`
/// experiment prints for these rows (see EXPERIMENTS.md).
#[test]
fn sketch_recall_on_flickr_small_is_pinned() {
    let preset = DatasetPreset::FlickrSmall;
    let sigma = preset.default_sigma();
    assert_eq!(sigma, 0.16, "the pinned point moved; re-pin the guard");
    let seed = preset.sketch_seed();

    let build = |name: &str| {
        MatchingPipeline::new(preset.generate())
            .tokenizer(TokenizerConfig::tags_only())
            .sigma(sigma)
            .job(quick_job(name))
    };
    let exact = build("exact").build_graph();
    let disco = build("disco")
        .candidate_generator(DiscoSampler::new(seed, 4.0))
        .build_graph();
    let lsh = build("lsh")
        .candidate_generator(LshBander::new(seed, 16, 2))
        .build_graph();

    // The exact reference (identical to the PR 5 join regression point).
    assert_eq!(exact.generator, "exact");
    assert_eq!(exact.graph.num_edges(), 3502);
    assert_eq!(exact.candidate_pairs, 12654);

    // DISCO at λ = 4: recall 2015/3502 ≈ 0.575 for strictly less shuffle.
    assert_eq!(disco.generator, "disco-4");
    assert_eq!(disco.graph.num_edges(), 2015);
    assert!(
        disco.shuffled_records < exact.shuffled_records,
        "DISCO must shuffle strictly fewer records than the exact join \
         ({} vs {})",
        disco.shuffled_records,
        exact.shuffled_records
    );

    // LSH at 16 bands × 2 rows: recall 1533/3502 ≈ 0.438.
    assert_eq!(lsh.generator, "lsh-16x2");
    assert_eq!(lsh.graph.num_edges(), 1533);
    assert!(lsh.shuffled_records < exact.shuffled_records);

    // Both sketches stay subsets of the exact edge set with bit-identical
    // weights (exact verification is the last stage of every generator).
    let reference: std::collections::HashMap<(u32, u32), u64> = edge_bits(&exact)
        .into_iter()
        .map(|(item, consumer, bits)| ((item, consumer), bits))
        .collect();
    for sketch in [&disco, &lsh] {
        for (item, consumer, bits) in edge_bits(sketch) {
            assert_eq!(
                reference.get(&(item, consumer)),
                Some(&bits),
                "{}: edge ({item}, {consumer}) is not an exact-join edge",
                sketch.generator
            );
        }
    }
}
