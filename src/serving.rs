//! The serving side of the pipeline: a standing index plus an online
//! assignment, fed one arrival at a time.
//!
//! [`MatchingPipeline::serve`][crate::MatchingPipeline::serve] ends the
//! batch world at the point where the similarity index has been built and
//! the consumer capacities assigned — and instead of running a batch
//! matching algorithm, hands back a [`ServingPipeline`]:
//!
//! * [`ServingPipeline::match_text`] answers "which consumers does this
//!   new item match at σ?" with a top-k point query against the standing
//!   [`ServingIndex`] — no corpus scan, no MapReduce job,
//! * [`ServingPipeline::assign`] additionally commits the arrival into an
//!   online b-matching ([`IncrementalMatcher`]) that keeps every consumer
//!   within its capacity, preempting strictly lighter assignments when a
//!   better match arrives,
//! * [`ServingPipeline::add_consumers`] absorbs new consumers: their
//!   prefix postings are appended to the on-disk index partitions and
//!   they join the assignment with their own capacity.
//!
//! The handle vectorizes arriving documents over the same joint
//! vocabulary the batch join aligns the two corpora with, so a point
//! query for one of the original items returns exactly the batch join's
//! candidate edges for it (`tests/serving_equivalence.rs` locks this).
//! See `docs/serving.md` for the dataflow.

use std::ops::Range;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use smr_datagen::SocialDataset;
use smr_matching::IncrementalMatcher;
use smr_simjoin::{rarest_first_rank, term_max_weights, ScoredMatch, ServingIndex};
use smr_storage::DatasetStore;
use smr_text::{Corpus, Document, SparseVector, TfIdf, TokenizerConfig, Vocabulary, Weighting};

static SERVE_SEQ: AtomicU64 = AtomicU64::new(0);

/// The outcome of one arrival committed via [`ServingPipeline::assign`].
#[derive(Debug, Clone)]
pub struct ItemAssignment {
    /// Dense index the arrival was registered under in the matcher.
    pub item: usize,
    /// The point-query result: every candidate at σ, heaviest first,
    /// truncated to the query's `k`.
    pub candidates: Vec<ScoredMatch>,
    /// The consumers the item was assigned to (some may be preempted by
    /// later, strictly heavier arrivals).
    pub assigned: Vec<usize>,
}

/// A standing serving handle over a dataset: the similarity index kept
/// alive on disk, the joint vocabulary to vectorize arrivals with, and an
/// online capacity-aware assignment.
///
/// Created by [`crate::MatchingPipeline::serve`]; the on-disk index lives
/// in a private directory removed when the handle is dropped.
#[derive(Debug)]
pub struct ServingPipeline {
    index: ServingIndex,
    matcher: IncrementalMatcher,
    vocab: Vocabulary,
    consumer_ids: Vec<String>,
    sigma: f64,
    store: DatasetStore,
    store_root: PathBuf,
    /// The corpora behind the standing index, kept current as consumers
    /// arrive — what [`ServingPipeline::rebuild`] rebuilds from.
    item_vectors: Vec<SparseVector>,
    consumer_vectors: Vec<SparseVector>,
    /// Elementwise maxima of every query vector served so far.  A rebuild
    /// folds these into the item-side maxima, so the fresh index's
    /// exactness contract covers the drifted workload, not just the
    /// original corpus.  Behind a mutex because queries take `&self`.
    observed_query_max: Mutex<Vec<f64>>,
    /// Rebuild epoch, used to give each rebuilt index a fresh dataset
    /// prefix in the store.
    epoch: u64,
}

impl ServingPipeline {
    /// Builds the serving structures for `dataset` at threshold `sigma`,
    /// with consumer capacities scaled by `alpha` — the serving-mode
    /// counterpart of the batch pipeline's join + matching stages.
    pub(crate) fn build(dataset: SocialDataset, sigma: f64, alpha: f64) -> Self {
        // The batch join re-vectorizes both corpora over one joint
        // vocabulary before indexing; serving must vectorize arrivals the
        // same way or point queries would not line up with batch edges.
        let mut all_docs: Vec<Document> =
            Vec::with_capacity(dataset.items.len() + dataset.consumers.len());
        all_docs.extend(dataset.items.iter().cloned());
        all_docs.extend(dataset.consumers.iter().cloned());
        let joint = Corpus::build(all_docs, &TokenizerConfig::default());
        let item_vectors: Vec<SparseVector> = (0..dataset.items.len())
            .map(|i| joint.vector(i).clone())
            .collect();
        let consumer_vectors: Vec<SparseVector> = (dataset.items.len()..joint.len())
            .map(|i| joint.vector(i).clone())
            .collect();

        let store_root = std::env::temp_dir().join(format!(
            "smr-serve-{}-{}",
            std::process::id(),
            SERVE_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let store = DatasetStore::open(&store_root)
            .unwrap_or_else(|e| panic!("failed to open serving store at {store_root:?}: {e}"));
        let index =
            ServingIndex::for_corpora(&store, "serve", &item_vectors, &consumer_vectors, sigma);

        let caps = dataset.capacities(alpha);
        let matcher = IncrementalMatcher::new(Vec::new(), caps.consumer_capacities().to_vec());
        let consumer_ids = dataset.consumers.iter().map(|d| d.id.clone()).collect();
        ServingPipeline {
            index,
            matcher,
            vocab: joint.vocabulary().clone(),
            consumer_ids,
            sigma,
            store,
            store_root,
            item_vectors,
            consumer_vectors,
            observed_query_max: Mutex::new(Vec::new()),
            epoch: 0,
        }
    }

    /// Vectorizes a document text exactly as the batch join would have:
    /// joint vocabulary, tf·idf weights, unit L2 norm.  Terms outside the
    /// joint vocabulary are dropped (they cannot contribute to any indexed
    /// similarity).
    pub fn vectorize(&self, text: &str) -> SparseVector {
        let tokenizer = smr_text::Tokenizer::new(TokenizerConfig::default());
        let tokens = tokenizer.tokenize(text);
        TfIdf::new(&self.vocab, Weighting::TfIdf, true).vectorize(&tokens)
    }

    /// Point query: the top-`k` consumers matching `text` at σ, heaviest
    /// first.
    pub fn match_text(&self, text: &str, k: usize) -> Vec<ScoredMatch> {
        self.match_vector(&self.vectorize(text), k)
    }

    /// Point query over a pre-vectorized arrival (must be in the joint
    /// term space, e.g. from [`ServingPipeline::vectorize`]).
    pub fn match_vector(&self, query: &SparseVector, k: usize) -> Vec<ScoredMatch> {
        self.observe_query(query);
        self.index.match_one(query, k)
    }

    /// Records a served query's per-term weights into the observed maxima,
    /// so a later [`ServingPipeline::rebuild`] can cover the workload that
    /// actually arrived.
    fn observe_query(&self, query: &SparseVector) {
        let mut observed = self
            .observed_query_max
            .lock()
            .expect("observed-maxima lock poisoned");
        for &(term, weight) in query.entries() {
            let t = term.index();
            if observed.len() <= t {
                observed.resize(t + 1, 0.0);
            }
            if weight > observed[t] {
                observed[t] = weight;
            }
        }
    }

    /// One item arrives: runs the point query and commits the arrival
    /// into the online assignment under the item's own `capacity`.
    pub fn assign(&mut self, text: &str, capacity: u64, k: usize) -> ItemAssignment {
        let candidates = self.match_text(text, k);
        let item = self.matcher.add_item(capacity);
        let edges: Vec<(usize, f64)> = candidates.iter().map(|m| (m.consumer, m.score)).collect();
        let assigned = self.matcher.arrive(item, &edges);
        ItemAssignment {
            item,
            candidates,
            assigned,
        }
    }

    /// New consumers join the corpus: each is vectorized over the joint
    /// vocabulary, its prefix postings are appended to the standing index,
    /// and it enters the assignment with `capacity`.  Returns the dense
    /// consumer indices assigned.
    pub fn add_consumers(&mut self, documents: &[Document], capacity: u64) -> Range<usize> {
        let vectors: Vec<SparseVector> =
            documents.iter().map(|d| self.vectorize(&d.text)).collect();
        let range = self.index.append_batch(&vectors);
        self.consumer_vectors.extend(vectors);
        for doc in documents {
            self.matcher.add_consumer(capacity);
            self.consumer_ids.push(doc.id.clone());
        }
        range
    }

    /// The similarity threshold served.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Number of consumers currently indexed.
    pub fn num_consumers(&self) -> usize {
        self.index.len()
    }

    /// The external id of a consumer by dense index.
    pub fn consumer_id(&self, consumer: usize) -> &str {
        &self.consumer_ids[consumer]
    }

    /// Whether the standing index has served queries it can no longer
    /// answer exactly: some arrival carried a term **heavier** than the
    /// per-term maximum the index's prefixes were pruned against, so its
    /// candidate set may have missed pairs.  Once this fires the workload
    /// has drifted past the build assumptions and the index should be
    /// rebuilt (a fresh [`crate::MatchingPipeline::serve`] over the grown
    /// corpus); the raw count is
    /// [`maxima_exceeded`][ServingIndex::maxima_exceeded] on
    /// [`ServingPipeline::index`].
    pub fn needs_rebuild(&self) -> bool {
        self.index.maxima_exceeded() > 0
    }

    /// Rebuilds the standing index from the current corpora when
    /// [`ServingPipeline::needs_rebuild`] fires, and swaps it in.  Returns
    /// whether a rebuild ran (`false` = the index is still exact for
    /// everything it has served; nothing happens).
    ///
    /// The fresh index covers the *drifted* workload, not just the build
    /// corpus: its per-term query maxima are the elementwise max of the
    /// item-side maxima and every query weight observed so far, so the
    /// very arrivals that tripped the detector are inside the new
    /// exactness contract.  Consumers added via
    /// [`ServingPipeline::add_consumers`] are re-indexed from scratch
    /// (their prefixes are re-cut against the widened maxima), the drift
    /// counter resets to zero, and the old index's datasets are reclaimed
    /// from the store.
    pub fn rebuild(&mut self) -> bool {
        if !self.needs_rebuild() {
            return false;
        }
        let observed = self
            .observed_query_max
            .lock()
            .expect("observed-maxima lock poisoned")
            .clone();
        let corpus_vocab = self
            .item_vectors
            .iter()
            .chain(self.consumer_vectors.iter())
            .flat_map(|v| v.entries().iter().map(|(t, _)| t.index() + 1))
            .max()
            .unwrap_or(0);
        let vocab_size = corpus_vocab.max(observed.len());
        let mut max_weights = term_max_weights(&self.item_vectors, vocab_size);
        for (term, &weight) in observed.iter().enumerate() {
            if weight > max_weights[term] {
                max_weights[term] = weight;
            }
        }
        let rank = rarest_first_rank(&self.item_vectors, &self.consumer_vectors, vocab_size);
        let old_prefix = format!("{}/", self.rebuild_prefix());
        self.epoch += 1;
        self.index = ServingIndex::build(
            &self.store,
            &self.rebuild_prefix(),
            &self.consumer_vectors,
            max_weights,
            rank,
            self.sigma,
        );
        for path in self.store.paths() {
            if path.starts_with(&old_prefix) {
                self.store.remove(&path);
            }
        }
        true
    }

    /// The store prefix of the current epoch's index datasets ("serve"
    /// for the original build, "serve-N" for the N-th rebuild).
    fn rebuild_prefix(&self) -> String {
        if self.epoch == 0 {
            "serve".to_string()
        } else {
            format!("serve-{}", self.epoch)
        }
    }

    /// The standing index (point queries, append stats, disk-read
    /// counters).
    pub fn index(&self) -> &ServingIndex {
        &self.index
    }

    /// The online assignment (current edges, total weight, residuals).
    pub fn matcher(&self) -> &IncrementalMatcher {
        &self.matcher
    }
}

impl Drop for ServingPipeline {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.store_root);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MatchingPipeline;
    use smr_datagen::FlickrGenerator;

    fn small_dataset() -> SocialDataset {
        FlickrGenerator {
            num_photos: 40,
            num_users: 15,
            vocabulary: 60,
            seed: 9,
            ..FlickrGenerator::default()
        }
        .generate()
    }

    #[test]
    fn point_queries_reproduce_the_batch_candidate_edges() {
        let dataset = small_dataset();
        let sigma = 0.12;
        let batch = MatchingPipeline::new(dataset.clone())
            .sigma(sigma)
            .job(smr_mapreduce::JobConfig::named("serve-test").with_threads(2))
            .build_graph();
        let serving = MatchingPipeline::new(dataset.clone()).sigma(sigma).serve();

        let mut batch_edges: Vec<(usize, usize)> = batch
            .graph
            .edges()
            .iter()
            .map(|e| (e.item.index(), e.consumer.index()))
            .collect();
        batch_edges.sort_unstable();
        let mut served_edges = Vec::new();
        for (t, doc) in dataset.items.iter().enumerate() {
            for m in serving.match_text(&doc.text, usize::MAX) {
                served_edges.push((t, m.consumer));
            }
        }
        served_edges.sort_unstable();
        assert_eq!(served_edges, batch_edges);
    }

    #[test]
    fn assignment_respects_consumer_capacities() {
        let dataset = small_dataset();
        let mut serving = MatchingPipeline::new(dataset.clone()).sigma(0.12).serve();
        let caps = dataset.capacities(1.0);
        for doc in &dataset.items {
            let outcome = serving.assign(&doc.text, 2, 8);
            assert!(outcome.assigned.len() <= 2);
            assert!(outcome.assigned.len() <= outcome.candidates.len());
        }
        let mut consumer_degree = vec![0u64; serving.num_consumers()];
        for (_, c, w) in serving.matcher().assignment() {
            consumer_degree[c] += 1;
            assert!(w >= serving.sigma());
        }
        for (c, d) in consumer_degree.iter().enumerate() {
            assert!(
                *d <= caps.consumer_capacities()[c],
                "consumer {c} over capacity"
            );
        }
    }

    #[test]
    fn drifted_arrivals_flip_needs_rebuild() {
        let dataset = small_dataset();
        let serving = MatchingPipeline::new(dataset.clone()).sigma(0.12).serve();
        assert!(!serving.needs_rebuild());

        // The original items are the corpus the maxima were derived from:
        // serving them never trips the detector.
        for doc in &dataset.items {
            let _ = serving.match_text(&doc.text, 4);
        }
        assert!(!serving.needs_rebuild());

        // An arrival carrying more mass on a term than any build-time item
        // did (unit vectors bound every build maximum by 1.0) falls outside
        // the exactness contract.
        let item_vec = serving.vectorize(&dataset.items[0].text);
        let (term, _) = item_vec.entries()[0];
        let heavy = SparseVector::from_entries([(term, 2.0)]);
        assert!(serving.index().query_exceeds_maxima(&heavy));
        let _ = serving.match_vector(&heavy, 4);
        assert!(serving.needs_rebuild());
        assert_eq!(serving.index().maxima_exceeded(), 1);
    }

    #[test]
    fn rebuild_restores_exactness_after_drift() {
        let dataset = small_dataset();
        let mut serving = MatchingPipeline::new(dataset.clone()).sigma(0.12).serve();
        assert!(!serving.rebuild(), "no drift ⇒ no rebuild");

        // Drive the drift counter well past the rebuild threshold: unit
        // vectors bound every build-time maximum by 1.0, so weight 2.0 on
        // an indexed term is strictly heavier than anything declared.
        let item_vec = serving.vectorize(&dataset.items[0].text);
        let (term, _) = item_vec.entries()[0];
        let heavy = SparseVector::from_entries([(term, 2.0)]);
        for _ in 0..3 {
            let _ = serving.match_vector(&heavy, 4);
        }
        assert_eq!(serving.index().maxima_exceeded(), 3);
        assert!(serving.needs_rebuild());

        assert!(serving.rebuild());
        assert!(!serving.needs_rebuild(), "the drift counter must reset");
        assert_eq!(serving.num_consumers(), dataset.consumers.len());

        // The very query that tripped the detector is now inside the
        // exactness contract — served without re-flagging drift, and
        // returning exactly the brute-force thresholded candidates.
        assert!(!serving.index().query_exceeds_maxima(&heavy));
        let matches = serving.match_vector(&heavy, usize::MAX);
        assert!(!serving.needs_rebuild());
        let mut got: Vec<usize> = matches.iter().map(|m| m.consumer).collect();
        got.sort_unstable();
        let expected: Vec<usize> = dataset
            .consumers
            .iter()
            .enumerate()
            .filter(|(_, d)| heavy.dot(&serving.vectorize(&d.text)) >= serving.sigma())
            .map(|(c, _)| c)
            .collect();
        assert_eq!(got, expected);

        // Original items keep their batch candidates after the rebuild
        // (widening maxima only loosens prefixes, never drops pairs).
        let batch = MatchingPipeline::new(dataset.clone())
            .sigma(0.12)
            .job(smr_mapreduce::JobConfig::named("rebuild-test").with_threads(2))
            .build_graph();
        let mut batch_edges: Vec<(usize, usize)> = batch
            .graph
            .edges()
            .iter()
            .map(|e| (e.item.index(), e.consumer.index()))
            .collect();
        batch_edges.sort_unstable();
        let mut served_edges = Vec::new();
        for (t, doc) in dataset.items.iter().enumerate() {
            for m in serving.match_text(&doc.text, usize::MAX) {
                served_edges.push((t, m.consumer));
            }
        }
        served_edges.sort_unstable();
        assert_eq!(served_edges, batch_edges);
    }

    #[test]
    fn rebuild_reindexes_consumers_added_after_the_build() {
        let dataset = small_dataset();
        let mut serving = MatchingPipeline::new(dataset.clone()).sigma(0.12).serve();
        let probe_item = dataset.items[0].clone();
        let late = serving.num_consumers();
        serving.add_consumers(&[Document::new("late-user", probe_item.text.clone())], 3);

        // Trip the detector, rebuild, and check the late consumer survived
        // the from-scratch re-index.
        let item_vec = serving.vectorize(&probe_item.text);
        let (term, _) = item_vec.entries()[0];
        let _ = serving.match_vector(&SparseVector::from_entries([(term, 2.0)]), 1);
        assert!(serving.rebuild());
        assert_eq!(serving.num_consumers(), late + 1);
        let matches = serving.match_text(&probe_item.text, usize::MAX);
        assert!(
            matches.iter().any(|m| m.consumer == late),
            "identical tags give similarity 1.0 ≥ σ after the rebuild"
        );
    }

    #[test]
    fn late_consumers_join_the_index_and_the_assignment() {
        let dataset = small_dataset();
        let mut serving = MatchingPipeline::new(dataset.clone()).sigma(0.12).serve();
        let before = serving.num_consumers();
        // A newcomer sharing an existing item's exact tags must match it.
        let probe_item = dataset.items[0].clone();
        let range =
            serving.add_consumers(&[Document::new("late-user", probe_item.text.clone())], 3);
        assert_eq!(range, before..before + 1);
        assert_eq!(serving.num_consumers(), before + 1);
        assert_eq!(serving.consumer_id(before), "late-user");
        let matches = serving.match_text(&probe_item.text, usize::MAX);
        assert!(
            matches.iter().any(|m| m.consumer == before),
            "identical tags give similarity 1.0 ≥ σ"
        );
        let outcome = serving.assign(&probe_item.text, 1, 4);
        assert_eq!(outcome.assigned.len(), 1);
    }
}
