//! Facade crate for the reproduction of "Social Content Matching in
//! MapReduce" (VLDB 2011).
//!
//! Re-exports the workspace crates under a single name so that examples and
//! downstream users can depend on one package:
//!
//! * [`mapreduce`] — the in-process MapReduce engine,
//! * [`graph`] — bipartite item/consumer graphs, capacities and matchings,
//! * [`text`] — vector-space representation (tokenization, tf·idf),
//! * [`simjoin`] — prefix-filtering similarity join building candidate edges,
//! * [`sketch`] — pluggable sketch-based candidate generation (DISCO
//!   sampling, MinHash/LSH banding) behind the
//!   [`sketch::CandidateGenerator`] abstraction (see `docs/sketch.md`),
//! * [`matching`] — the paper's algorithms: GreedyMR, StackMR,
//!   StackGreedyMR, centralized greedy/stack and an exact solver,
//! * [`datagen`] — synthetic dataset generators standing in for the paper's
//!   flickr and Yahoo! Answers crawls,
//! * [`storage`] — the out-of-core layer: binary record codec, spill-run
//!   files, the spill manager and disk-backed dataset stores,
//! * [`distrib`] — multi-process sharded execution: a coordinator that
//!   splits each job's map phase across worker OS processes exchanging
//!   run files, with supervision and byte-identical output (see
//!   `docs/distrib.md`).
//!
//! The end-to-end chain — tokenize, similarity-join, assign capacities,
//! match — is packaged as the [`MatchingPipeline`] builder ([`pipeline`]),
//! which runs every MapReduce job of every stage through one
//! [`mapreduce::FlowContext`] and reports them in one
//! [`mapreduce::FlowReport`].  For the online counterpart — a standing
//! index answering point queries as items arrive, with an incremental
//! capacity-aware assignment — use [`MatchingPipeline::serve`]
//! ([`serving`]).

pub use smr_datagen as datagen;
pub use smr_distrib as distrib;
pub use smr_graph as graph;
pub use smr_mapreduce as mapreduce;
pub use smr_matching as matching;
pub use smr_simjoin as simjoin;
pub use smr_sketch as sketch;
pub use smr_storage as storage;
pub use smr_text as text;

pub mod pipeline;
pub mod serving;

pub use pipeline::{CandidateGraph, MatchingPipeline, PipelineRun};
pub use serving::{ItemAssignment, ServingPipeline};
