//! The end-to-end pipeline of the paper, as one builder.
//!
//! The paper's system (its pipeline figure) is: documents → vector-space
//! representation → similarity join at threshold σ → capacities from the
//! activity/favourite signals (scaled by α) → a MapReduce b-matching
//! algorithm.  [`MatchingPipeline`] packages exactly that chain, running
//! every MapReduce job — the two similarity-join jobs and every matching
//! round — through one [`FlowContext`], so a single [`FlowReport`]
//! accounts for the whole run:
//!
//! ```no_run
//! use social_content_matching::datagen::FlickrGenerator;
//! use social_content_matching::matching::AlgorithmKind;
//! use social_content_matching::text::TokenizerConfig;
//! use social_content_matching::MatchingPipeline;
//!
//! let dataset = FlickrGenerator::default().generate();
//! let run = MatchingPipeline::new(dataset)
//!     .tokenizer(TokenizerConfig::tags_only())
//!     .sigma(0.15)
//!     .alpha(1.0)
//!     .algorithm(AlgorithmKind::GreedyMr)
//!     .run();
//! println!(
//!     "{} edges matched, {} MapReduce jobs ({} simjoin + {} matching), {} records shuffled",
//!     run.matching.matching.len(),
//!     run.report.num_jobs(),
//!     run.simjoin_jobs,
//!     run.matching.mr_jobs,
//!     run.report.total_shuffled_records(),
//! );
//! ```

use std::sync::Arc;

use smr_datagen::SocialDataset;
use smr_distrib::{run_sharded, ShardOptions};
use smr_graph::{BipartiteGraph, Capacities};
use smr_mapreduce::flow::{FlowContext, FlowReport};
use smr_mapreduce::JobConfig;
use smr_matching::runner::RunnerConfig;
use smr_matching::{run_algorithm, AlgorithmKind, GreedyMrConfig, MatchingRun, StackMrConfig};
use smr_simjoin::StageShuffle;
use smr_sketch::{CandidateGenerator, ExactPrefixJoin};
use smr_text::{Corpus, TokenizerConfig};

/// Builder for the paper's end-to-end pipeline: tokenize → similarity
/// join → capacities → matching, all through one [`FlowContext`].
#[derive(Debug, Clone)]
pub struct MatchingPipeline {
    dataset: SocialDataset,
    tokenizer: TokenizerConfig,
    sigma: f64,
    alpha: f64,
    algorithm: AlgorithmKind,
    job: JobConfig,
    seed: u64,
    epsilon: f64,
    max_rounds: Option<usize>,
    shard: Option<ShardOptions>,
    generator: Arc<dyn CandidateGenerator>,
}

/// The candidate-edge stage of a pipeline run: everything up to (and
/// including) the similarity join and the capacity assignment.
#[derive(Debug, Clone)]
pub struct CandidateGraph {
    /// The dataset the pipeline ran on (returned to the caller unchanged).
    pub dataset: SocialDataset,
    /// Candidate edges at threshold σ (weights are exact similarities).
    pub graph: BipartiteGraph,
    /// Capacities derived from the dataset's signals at the pipeline's α.
    pub capacities: Capacities,
    /// Candidate pairs generated before verification.
    pub candidate_pairs: usize,
    /// Candidates the join discarded on `partial score + remainder bound
    /// < σ` without touching the vectors.
    pub candidates_pruned: usize,
    /// Candidates that cost an exact dot product against the disk-backed
    /// vector store.
    pub verify_exact: usize,
    /// `(term, document)` entries indexed after prefix pruning (for
    /// sketch generators, the size of whatever standing structure their
    /// first job built).
    pub indexed_entries: usize,
    /// Tag of the candidate generator that produced the graph (`"exact"`
    /// unless [`MatchingPipeline::candidate_generator`] was set).
    pub generator: String,
    /// Per-stage shuffle volume of the generator's jobs, uniform across
    /// generators.
    pub stage_shuffles: Vec<StageShuffle>,
    /// Total records the generator's jobs shuffled.
    pub shuffled_records: u64,
    /// Total bytes the generator's jobs shuffled.
    pub shuffled_bytes: u64,
    /// MapReduce jobs the similarity join ran (always 2).
    pub simjoin_jobs: usize,
    /// Metrics of every job executed so far.
    pub report: FlowReport,
}

/// A complete pipeline run: the candidate stage plus the matching.
#[derive(Debug, Clone)]
pub struct PipelineRun {
    /// The dataset the pipeline ran on.
    pub dataset: SocialDataset,
    /// Candidate edges at threshold σ.
    pub graph: BipartiteGraph,
    /// Capacities at the pipeline's α.
    pub capacities: Capacities,
    /// Candidate pairs generated before verification.
    pub candidate_pairs: usize,
    /// Candidates the join pruned without touching the vectors.
    pub candidates_pruned: usize,
    /// Candidates that cost an exact dot product.
    pub verify_exact: usize,
    /// `(term, document)` entries indexed after prefix pruning.
    pub indexed_entries: usize,
    /// Tag of the candidate generator that produced the graph.
    pub generator: String,
    /// Total records the generator's jobs shuffled.
    pub shuffled_records: u64,
    /// Total bytes the generator's jobs shuffled.
    pub shuffled_bytes: u64,
    /// MapReduce jobs the similarity join ran (always 2).
    pub simjoin_jobs: usize,
    /// The matching algorithm's result (matching, rounds, per-round trace).
    pub matching: MatchingRun,
    /// Every MapReduce job of the whole run — similarity join and matching
    /// rounds — in execution order, with accumulated totals.
    pub report: FlowReport,
}

impl MatchingPipeline {
    /// Starts a pipeline over `dataset` with the paper's defaults:
    /// tags-only tokenization, σ = 0.1, α = 1, GreedyMR, seed 42.
    pub fn new(dataset: SocialDataset) -> Self {
        MatchingPipeline {
            job: JobConfig::named(format!("pipeline-{}", dataset.name)),
            dataset,
            tokenizer: TokenizerConfig::tags_only(),
            sigma: 0.1,
            alpha: 1.0,
            algorithm: AlgorithmKind::GreedyMr,
            seed: 42,
            epsilon: 1.0,
            max_rounds: None,
            shard: None,
            generator: Arc::new(ExactPrefixJoin::new()),
        }
    }

    /// Swaps the candidate-generation strategy (default: the exact
    /// prefix-filter join, byte-identical to calling the join directly).
    /// Sketch generators — [`smr_sketch::DiscoSampler`],
    /// [`smr_sketch::LshBander`] — trade bounded recall for shuffle
    /// volume; whatever generator runs, emitted edges always carry exact
    /// similarities ≥ σ, so everything downstream (capacities, matching)
    /// is unchanged.
    pub fn candidate_generator(mut self, generator: impl CandidateGenerator + 'static) -> Self {
        self.generator = Arc::new(generator);
        self
    }

    /// Sets the tokenizer both corpora are built with.
    pub fn tokenizer(mut self, tokenizer: TokenizerConfig) -> Self {
        self.tokenizer = tokenizer;
        self
    }

    /// Sets the similarity threshold σ.
    ///
    /// # Panics
    /// Panics if `sigma` is not strictly positive.
    pub fn sigma(mut self, sigma: f64) -> Self {
        assert!(sigma > 0.0, "threshold must be positive");
        self.sigma = sigma;
        self
    }

    /// Sets the capacity scale α (`b(u) = α·n(u)` for consumers).
    pub fn alpha(mut self, alpha: f64) -> Self {
        self.alpha = alpha;
        self
    }

    /// Selects the matching algorithm.
    pub fn algorithm(mut self, algorithm: AlgorithmKind) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Sets the MapReduce job configuration every job runs under (threads,
    /// task counts, memory budget); the config's name prefixes every job
    /// name in the [`FlowReport`].
    pub fn job(mut self, job: JobConfig) -> Self {
        self.job = job;
        self
    }

    /// Sets the engine memory budget in bytes for every job of the
    /// pipeline (`None` = unlimited).  Map tasks whose buffers outgrow
    /// their share of the budget spill sorted runs to disk and the shuffle
    /// streams them back — the pipeline's output is byte-identical for
    /// every budget, and the spill volume is reported as
    /// `spill_bytes`/`disk_runs` in the run's [`FlowReport`].
    pub fn memory_budget(mut self, bytes: Option<u64>) -> Self {
        self.job = self.job.with_memory_budget(bytes);
        self
    }

    /// Sets the directory spilled runs are written under (default: the
    /// system temp directory).  Each job cleans its spill files up when it
    /// finishes.
    pub fn spill_dir(mut self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.job = self.job.with_spill_dir(dir);
        self
    }

    /// Runs every MapReduce job of the pipeline across `n` worker OS
    /// processes (0 = stay in process): [`MatchingPipeline::run`] and
    /// [`MatchingPipeline::build_graph`] wrap the whole pipeline in a
    /// `smr_distrib` sharded session, so each job's map phase is split
    /// across the workers and the output stays **byte-identical** to the
    /// in-process run.  The session key defaults to the job config's
    /// name — give concurrent pipelines distinct names.  For full control
    /// of the session (worker arguments inside a test harness, timeouts,
    /// fault injection) use [`MatchingPipeline::shard_options`].
    pub fn process_shards(self, n: usize) -> Self {
        if n == 0 {
            let mut this = self;
            this.shard = None;
            this.job = this.job.with_process_shards(0);
            return this;
        }
        let key = self.job.name.clone();
        self.shard_options(ShardOptions::new(n).with_session_key(key))
    }

    /// Like [`MatchingPipeline::process_shards`] with explicit session
    /// options (shard count, session key, worker arguments, timeouts,
    /// fault injection).
    pub fn shard_options(mut self, opts: ShardOptions) -> Self {
        self.job = self.job.with_process_shards(opts.shards);
        self.shard = Some(opts);
        self
    }

    /// Sets the seed of the stack algorithms' randomized subroutine.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the stack algorithms' slackness parameter ε.
    pub fn epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = epsilon;
        self
    }

    /// Caps the number of GreedyMR rounds (the any-time early-stopping
    /// knob of Figure 5).  Unset means "run to convergence".
    pub fn max_rounds(mut self, max_rounds: usize) -> Self {
        self.max_rounds = Some(max_rounds);
        self
    }

    /// Runs the pipeline up to the candidate graph: corpus construction,
    /// the two-job similarity join, capacity assignment.  Used by callers
    /// that sweep σ or run several algorithms over one candidate graph
    /// (the experiment harness).
    pub fn build_graph(self) -> CandidateGraph {
        match self.shard.clone() {
            Some(opts) => run_sharded(opts, move || self.build_graph_inner()),
            None => self.build_graph_inner(),
        }
    }

    fn build_graph_inner(self) -> CandidateGraph {
        let flow = FlowContext::new(self.job.clone());
        self.join_stage(&flow)
    }

    /// Runs the complete pipeline: candidate graph, then the selected
    /// matching algorithm, every job through one flow.  With
    /// [`MatchingPipeline::process_shards`] set this is a sharded
    /// session: the map phase of every job — similarity join and every
    /// matching round — executes across the worker processes.
    pub fn run(self) -> PipelineRun {
        match self.shard.clone() {
            Some(opts) => run_sharded(opts, move || self.run_inner()),
            None => self.run_inner(),
        }
    }

    fn run_inner(self) -> PipelineRun {
        let flow = FlowContext::new(self.job.clone());
        // Only the algorithm-level knobs matter here: in flow mode the
        // engine configuration (threads, shuffle, names) comes from the
        // FlowContext, not from the configs' own `job` field.
        let mut greedy_config = GreedyMrConfig::default();
        if let Some(max_rounds) = self.max_rounds {
            greedy_config = greedy_config.with_max_rounds(max_rounds);
        }
        let runner_config = RunnerConfig {
            greedy_mr: greedy_config,
            stack_mr: StackMrConfig::default()
                .with_epsilon(self.epsilon)
                .with_seed(self.seed),
        };
        let algorithm = self.algorithm;
        let candidate = self.join_stage(&flow);
        let matching = run_algorithm(
            algorithm,
            &candidate.graph,
            &candidate.capacities,
            &runner_config,
            &flow,
        );
        PipelineRun {
            dataset: candidate.dataset,
            graph: candidate.graph,
            capacities: candidate.capacities,
            candidate_pairs: candidate.candidate_pairs,
            candidates_pruned: candidate.candidates_pruned,
            verify_exact: candidate.verify_exact,
            indexed_entries: candidate.indexed_entries,
            generator: candidate.generator,
            shuffled_records: candidate.shuffled_records,
            shuffled_bytes: candidate.shuffled_bytes,
            simjoin_jobs: candidate.simjoin_jobs,
            matching,
            report: flow.report(),
        }
    }

    /// Switches to serving mode: builds the standing similarity index and
    /// the online capacity-aware assignment, and returns the handle that
    /// answers point queries and absorbs arrivals — no batch matching job
    /// runs.  See [`crate::serving`] for the serving dataflow.
    pub fn serve(self) -> crate::serving::ServingPipeline {
        crate::serving::ServingPipeline::build(self.dataset, self.sigma, self.alpha)
    }

    fn join_stage(self, flow: &FlowContext) -> CandidateGraph {
        let items = Corpus::build(self.dataset.items.clone(), &self.tokenizer);
        let consumers = Corpus::build(self.dataset.consumers.clone(), &self.tokenizer);
        let join = self
            .generator
            .generate(&items, &consumers, self.sigma, flow);
        let capacities = self.dataset.capacities(self.alpha);
        CandidateGraph {
            dataset: self.dataset,
            graph: join.graph,
            capacities,
            candidate_pairs: join.candidate_pairs,
            candidates_pruned: join.candidates_pruned,
            verify_exact: join.verify_exact,
            indexed_entries: join.indexed_entries,
            generator: join.generator,
            stage_shuffles: join.stage_shuffles,
            shuffled_records: join.shuffled_records,
            shuffled_bytes: join.shuffled_bytes,
            simjoin_jobs: join.job_metrics.len(),
            report: flow.report(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smr_datagen::FlickrGenerator;

    fn small_dataset() -> SocialDataset {
        FlickrGenerator {
            num_photos: 60,
            num_users: 20,
            vocabulary: 80,
            seed: 5,
            ..FlickrGenerator::default()
        }
        .generate()
    }

    #[test]
    fn build_graph_runs_exactly_the_two_simjoin_jobs() {
        let candidate = MatchingPipeline::new(small_dataset())
            .sigma(0.1)
            .job(JobConfig::named("pipeline-test").with_threads(2))
            .build_graph();
        assert!(candidate.graph.num_edges() > 0);
        assert_eq!(candidate.simjoin_jobs, 2);
        assert_eq!(candidate.report.num_jobs(), 2);
        assert!(candidate.capacities.matches(&candidate.graph));
        // The join's candidate accounting closes and surfaces here.
        assert_eq!(
            candidate.candidate_pairs,
            candidate.candidates_pruned + candidate.verify_exact
        );
        assert!(candidate.verify_exact >= candidate.graph.num_edges());
        assert_eq!(
            candidate.report.job_names(),
            vec!["pipeline-test-index", "pipeline-test-probe"]
        );
    }

    #[test]
    fn full_run_reports_simjoin_and_matching_jobs_in_one_flow() {
        let run = MatchingPipeline::new(small_dataset())
            .sigma(0.1)
            .algorithm(AlgorithmKind::GreedyMr)
            .job(JobConfig::named("pipeline-test").with_threads(2))
            .run();
        assert!(run
            .matching
            .matching
            .is_feasible(&run.graph, &run.capacities));
        assert_eq!(
            run.report.num_jobs(),
            run.simjoin_jobs + run.matching.mr_jobs,
            "the flow must account for every job of both stages"
        );
        let matching_shuffled: u64 = run.matching.total_shuffled_records();
        assert!(run.report.total_shuffled_records() > matching_shuffled);
    }

    #[test]
    fn max_rounds_caps_greedy_and_stays_feasible() {
        let full = MatchingPipeline::new(small_dataset())
            .sigma(0.1)
            .job(JobConfig::named("pipeline-test").with_threads(2))
            .run();
        if full.matching.rounds < 2 {
            return;
        }
        let capped = MatchingPipeline::new(small_dataset())
            .sigma(0.1)
            .max_rounds(1)
            .job(JobConfig::named("pipeline-test").with_threads(2))
            .run();
        assert_eq!(capped.matching.rounds, 1);
        assert!(capped
            .matching
            .matching
            .is_feasible(&capped.graph, &capped.capacities));
    }
}
